#include "qserv/cluster.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "datagen/schemas.h"
#include "util/strings.h"

namespace qserv::core {
namespace {

/// Small shared dataset for cluster-level tests.
struct SmallSky {
  CatalogConfig catalog = CatalogConfig::lsst(18, 6, 0.05);
  datagen::PartitionedCatalog data;

  SmallSky() {
    SkyDataOptions opts;
    opts.basePatchObjects = 600;
    opts.withSources = false;
    opts.region = sphgeom::SphericalBox(0, -7, 14, 7);
    auto r = buildSkyCatalog(catalog, opts);
    EXPECT_TRUE(r.isOk()) << r.status().toString();
    data = std::move(r).value();
  }
};

TEST(MiniCluster, RejectsBadOptions) {
  SmallSky sky;
  ClusterOptions opts;
  opts.frontend.catalog = sky.catalog;
  opts.numWorkers = 0;
  EXPECT_FALSE(MiniCluster::create(opts, sky.data).isOk());
  opts.numWorkers = 2;
  opts.replication = 3;  // > workers
  EXPECT_FALSE(MiniCluster::create(opts, sky.data).isOk());
}

TEST(MiniCluster, ReplicationPlacesChunksOnDistinctWorkers) {
  SmallSky sky;
  ClusterOptions opts;
  opts.frontend.catalog = sky.catalog;
  opts.numWorkers = 3;
  opts.replication = 2;
  auto cluster = MiniCluster::create(opts, sky.data);
  ASSERT_TRUE(cluster.isOk());
  for (std::int32_t chunk : (*cluster)->chunkIds()) {
    auto replicas = (*cluster)->redirector()->replicasOf(chunk);
    ASSERT_EQ(replicas.size(), 2u) << "chunk " << chunk;
    EXPECT_NE(replicas[0]->id(), replicas[1]->id());
  }
}

TEST(MiniCluster, PrimaryChunksPartitionTheChunkSet) {
  SmallSky sky;
  ClusterOptions opts;
  opts.frontend.catalog = sky.catalog;
  opts.numWorkers = 4;
  auto cluster = MiniCluster::create(opts, sky.data);
  ASSERT_TRUE(cluster.isOk());
  std::size_t total = 0;
  for (std::size_t w = 0; w < (*cluster)->numWorkers(); ++w) {
    total += (*cluster)->chunksOfWorker(w).size();
  }
  EXPECT_EQ(total, (*cluster)->chunkIds().size());
}

TEST(MiniCluster, BinaryTransferClusterMatchesDumpCluster) {
  SmallSky sky;
  auto run = [&](TransferFormat format) {
    ClusterOptions opts;
    opts.frontend.catalog = sky.catalog;
    opts.numWorkers = 3;
    opts.worker.transfer = format;
    auto cluster = MiniCluster::create(opts, sky.data);
    EXPECT_TRUE(cluster.isOk());
    auto r = (*cluster)->frontend().query(
        "SELECT objectId, ra_PS FROM Object WHERE decl_PS > 0 "
        "ORDER BY objectId LIMIT 20");
    EXPECT_TRUE(r.isOk()) << r.status().toString();
    return std::move(r).value().result;
  };
  auto viaDump = run(TransferFormat::kSqlDump);
  auto viaBinary = run(TransferFormat::kBinary);
  ASSERT_TRUE(viaDump && viaBinary);
  ASSERT_EQ(viaDump->numRows(), viaBinary->numRows());
  for (std::size_t r = 0; r < viaDump->numRows(); ++r) {
    for (std::size_t c = 0; c < viaDump->numColumns(); ++c) {
      EXPECT_EQ(viaDump->cell(r, c).compare(viaBinary->cell(r, c)), 0);
    }
  }
}

TEST(MiniCluster, BinaryTransferAggregates) {
  SmallSky sky;
  ClusterOptions opts;
  opts.frontend.catalog = sky.catalog;
  opts.numWorkers = 3;
  opts.worker.transfer = TransferFormat::kBinary;
  auto cluster = MiniCluster::create(opts, sky.data);
  ASSERT_TRUE(cluster.isOk());
  auto r = (*cluster)->frontend().query(
      "SELECT COUNT(*), AVG(ra_PS) FROM Object");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  std::int64_t total = 0;
  for (const auto& chunk : sky.data.chunks) {
    total += static_cast<std::int64_t>(chunk.objects->numRows());
  }
  EXPECT_EQ(r->result->cell(0, 0).asInt(), total);
}

TEST(FrontendPool, RoundRobinsQueriesAcrossMasters) {
  SmallSky sky;
  ClusterOptions opts;
  opts.frontend.catalog = sky.catalog;
  opts.numWorkers = 3;
  auto cluster = MiniCluster::create(opts, sky.data);
  ASSERT_TRUE(cluster.isOk());

  FrontendConfig fc;
  fc.catalog = sky.catalog;
  FrontendPool pool(fc, (*cluster)->redirector(), (*cluster)->chunkIds(),
                    /*numFrontends=*/3);
  ASSERT_TRUE(pool.loadIndex(sky.data.index).isOk());
  EXPECT_EQ(pool.size(), 3u);

  std::int64_t expect = -1;
  for (int i = 0; i < 6; ++i) {
    auto r = pool.query("SELECT COUNT(*) FROM Object");
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    std::int64_t count = r->result->cell(0, 0).asInt();
    if (expect < 0) expect = count;
    EXPECT_EQ(count, expect);  // every master returns the same answer
  }
  auto routed = pool.routedCounts();
  ASSERT_EQ(routed.size(), 3u);
  for (auto n : routed) EXPECT_EQ(n, 2u);  // balanced
}

TEST(FrontendPool, IndexedLookupsWorkThroughEveryMaster) {
  SmallSky sky;
  ClusterOptions opts;
  opts.frontend.catalog = sky.catalog;
  opts.numWorkers = 2;
  auto cluster = MiniCluster::create(opts, sky.data);
  ASSERT_TRUE(cluster.isOk());

  FrontendConfig fc;
  fc.catalog = sky.catalog;
  FrontendPool pool(fc, (*cluster)->redirector(), (*cluster)->chunkIds(), 2);
  ASSERT_TRUE(pool.loadIndex(sky.data.index).isOk());

  std::int64_t id = sky.data.index[sky.data.index.size() / 3].objectId;
  for (int i = 0; i < 4; ++i) {  // hits both masters
    auto r = pool.query("SELECT * FROM Object WHERE objectId = " +
                        std::to_string(id));
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r->result->numRows(), 1u);
    EXPECT_EQ(r->chunksDispatched, 1u);
  }
}

TEST(FrontendPool, ConcurrentQueriesAcrossMasters) {
  SmallSky sky;
  ClusterOptions opts;
  opts.frontend.catalog = sky.catalog;
  opts.numWorkers = 3;
  auto cluster = MiniCluster::create(opts, sky.data);
  ASSERT_TRUE(cluster.isOk());

  FrontendConfig fc;
  fc.catalog = sky.catalog;
  FrontendPool pool(fc, (*cluster)->redirector(), (*cluster)->chunkIds(), 3);
  ASSERT_TRUE(pool.loadIndex(sky.data.index).isOk());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      auto r = pool.query("SELECT COUNT(*) FROM Object WHERE ra_PS > 5");
      if (!r.isOk()) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(MiniCluster, DistributedDistinctMatchesOracle) {
  SmallSky sky;
  ClusterOptions opts;
  opts.frontend.catalog = sky.catalog;
  opts.numWorkers = 3;
  auto cluster = MiniCluster::create(opts, sky.data);
  ASSERT_TRUE(cluster.isOk());
  // subChunkId values repeat across chunks: chunk-local dedup alone would
  // be wrong; the merge must re-dedup the union.
  auto r = (*cluster)->frontend().query(
      "SELECT DISTINCT subChunkId FROM Object ORDER BY subChunkId");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  std::set<std::int64_t> expect;
  for (const auto& chunk : sky.data.chunks) {
    for (std::size_t i = 0; i < chunk.objects->numRows(); ++i) {
      expect.insert(chunk.objects->cell(i, datagen::kObjSubChunkId).asInt());
    }
  }
  ASSERT_EQ(r->result->numRows(), expect.size());
  std::size_t i = 0;
  for (std::int64_t v : expect) {
    EXPECT_EQ(r->result->cell(i++, 0).asInt(), v);
  }
  // Chunk-local dedup shrinks traffic: fewer rows merged than total rows.
  EXPECT_LT(r->rowsMerged, 600u * 2u);
}

TEST(MiniCluster, DistributedHavingFiltersMergedGroups) {
  SmallSky sky;
  ClusterOptions opts;
  opts.frontend.catalog = sky.catalog;
  opts.numWorkers = 3;
  auto cluster = MiniCluster::create(opts, sky.data);
  ASSERT_TRUE(cluster.isOk());

  // Oracle: per-subChunkId counts over the raw rows (keys span chunks, so
  // HAVING on partial chunk groups would give a different — wrong — set).
  std::map<std::int64_t, std::int64_t> counts;
  for (const auto& chunk : sky.data.chunks) {
    for (std::size_t i = 0; i < chunk.objects->numRows(); ++i) {
      counts[chunk.objects->cell(i, datagen::kObjSubChunkId).asInt()]++;
    }
  }
  std::int64_t threshold = 0;
  for (const auto& [k, n] : counts) threshold = std::max(threshold, n);
  threshold = threshold / 2;
  std::size_t expect = 0;
  for (const auto& [k, n] : counts) {
    if (n > threshold) ++expect;
  }
  ASSERT_GT(expect, 0u);

  auto r = (*cluster)->frontend().query(util::format(
      "SELECT subChunkId, COUNT(*) AS n FROM Object GROUP BY subChunkId "
      "HAVING COUNT(*) > %lld ORDER BY subChunkId",
      static_cast<long long>(threshold)));
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  ASSERT_EQ(r->result->numRows(), expect);
  for (std::size_t i = 0; i < r->result->numRows(); ++i) {
    std::int64_t key = r->result->cell(i, 0).asInt();
    EXPECT_EQ(r->result->cell(i, 1).asInt(), counts.at(key));
    EXPECT_GT(counts.at(key), threshold);
  }
}

TEST(MiniCluster, DistinctWithAggregatesRejected) {
  SmallSky sky;
  ClusterOptions opts;
  opts.frontend.catalog = sky.catalog;
  opts.numWorkers = 2;
  auto cluster = MiniCluster::create(opts, sky.data);
  ASSERT_TRUE(cluster.isOk());
  auto r = (*cluster)->frontend().query("SELECT DISTINCT COUNT(*) FROM Object");
  EXPECT_EQ(r.status().code(), util::ErrorCode::kUnimplemented);
}

TEST(MiniCluster, DatabaseQualifiedTableNames) {
  // §5.3: queries may arrive with a database qualifier ("LSST.Object");
  // analysis and rewriting must treat it as the partitioned Object table.
  SmallSky sky;
  ClusterOptions opts;
  opts.frontend.catalog = sky.catalog;
  opts.numWorkers = 2;
  auto cluster = MiniCluster::create(opts, sky.data);
  ASSERT_TRUE(cluster.isOk());
  auto qualified =
      (*cluster)->frontend().query("SELECT COUNT(*) FROM LSST.Object");
  auto bare = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(qualified.isOk()) << qualified.status().toString();
  ASSERT_TRUE(bare.isOk());
  EXPECT_EQ(qualified->result->cell(0, 0).asInt(),
            bare->result->cell(0, 0).asInt());
  EXPECT_EQ(qualified->chunksDispatched, bare->chunksDispatched);
}

// -------- parameterized overlap-radius correctness sweep -----------------
// Property: for any join radius strictly below the overlap margin, the
// distributed near-neighbor count equals a brute-force count over the raw
// rows (no pair is lost at chunk or subchunk borders).
class OverlapSweep : public ::testing::TestWithParam<double> {};

TEST_P(OverlapSweep, DistributedPairCountIsExact) {
  const double radius = GetParam();
  CatalogConfig catalog = CatalogConfig::lsst(18, 6, /*overlapDeg=*/0.06);
  SkyDataOptions opts;
  opts.basePatchObjects = 900;
  opts.withSources = false;
  opts.region = sphgeom::SphericalBox(0, -7, 8, 7);
  auto sky = buildSkyCatalog(catalog, opts);
  ASSERT_TRUE(sky.isOk());

  ClusterOptions copts;
  copts.frontend.catalog = catalog;
  copts.numWorkers = 3;
  auto cluster = MiniCluster::create(copts, *sky);
  ASSERT_TRUE(cluster.isOk());

  std::string sql = util::format(
      "SELECT count(*) FROM Object o1, Object o2 "
      "WHERE qserv_areaspec_box(1, -4, 6, 3) "
      "AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < %.17g",
      radius);
  auto exec = (*cluster)->frontend().query(sql);
  ASSERT_TRUE(exec.isOk()) << exec.status().toString();
  std::int64_t got = exec->result->cell(0, 0).asInt();

  // Brute force.
  sphgeom::SphericalBox box(1, -4, 6, 3);
  std::vector<std::pair<double, double>> all, inBox;
  for (const auto& chunk : sky->chunks) {
    for (std::size_t r = 0; r < chunk.objects->numRows(); ++r) {
      double ra = chunk.objects->cell(r, datagen::kObjRaPs).asDouble();
      double dec = chunk.objects->cell(r, datagen::kObjDeclPs).asDouble();
      all.emplace_back(ra, dec);
      if (box.contains(ra, dec)) inBox.emplace_back(ra, dec);
    }
  }
  std::int64_t want = 0;
  for (const auto& [ra1, dec1] : inBox) {
    for (const auto& [ra2, dec2] : all) {
      if (sphgeom::angSepDeg(ra1, dec1, ra2, dec2) < radius) ++want;
    }
  }
  EXPECT_EQ(got, want) << "radius " << radius;
  EXPECT_GT(got, 0);
}

INSTANTIATE_TEST_SUITE_P(Radii, OverlapSweep,
                         ::testing::Values(0.005, 0.02, 0.04, 0.059));

}  // namespace
}  // namespace qserv::core
