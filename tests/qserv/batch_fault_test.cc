/// \file batch_fault_test.cc
/// \brief Fault injection against the batched dispatch path (§7.6 remedy):
/// a rejected batch write must fall back to per-chunk dispatch, a worker
/// dying mid-stream must cost only its undelivered chunks (retried on a
/// replica), and corrupted stream frames must be caught by the per-chunk
/// MD5 trailer — never merged. Runs under `ctest -L faults`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "qserv/cluster.h"
#include "util/metrics.h"

namespace qserv::core {
namespace {

class BatchFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new CatalogConfig(CatalogConfig::lsst(18, 6, 0.05));
    SkyDataOptions data;
    data.basePatchObjects = 400;
    data.withSources = false;
    data.region = sphgeom::SphericalBox(0, -7, 14, 7);
    auto sky = buildSkyCatalog(*catalog_, data);
    ASSERT_TRUE(sky.isOk()) << sky.status().toString();
    sky_ = new datagen::PartitionedCatalog(std::move(sky).value());

    // Fault-free answers from a clean batched cluster.
    ClusterOptions clean;
    clean.frontend.catalog = *catalog_;
    clean.numWorkers = 3;
    auto cluster = MiniCluster::create(clean, *sky_);
    ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
    oracle_ = new std::vector<sql::TablePtr>();
    for (const auto& q : queries()) {
      auto r = (*cluster)->frontend().query(q);
      ASSERT_TRUE(r.isOk()) << q << ": " << r.status().toString();
      oracle_->push_back(r->result);
    }
  }

  static void TearDownTestSuite() {
    delete oracle_;
    oracle_ = nullptr;
    delete sky_;
    sky_ = nullptr;
    delete catalog_;
    catalog_ = nullptr;
  }

  static const std::vector<std::string>& queries() {
    static const std::vector<std::string> kQueries = {
        "SELECT COUNT(*) FROM Object",
        "SELECT COUNT(*), AVG(ra_PS) FROM Object WHERE decl_PS > 0",
        "SELECT MIN(objectId), MAX(objectId) FROM Object",
    };
    return kQueries;
  }

  /// Faulty-cluster base options: replicated chunks, fast retries, a hang
  /// backstop. Batched dispatch is the frontend default.
  static ClusterOptions faultyOptions() {
    ClusterOptions opts;
    opts.frontend.catalog = *catalog_;
    opts.numWorkers = 3;
    opts.replication = 2;
    opts.frontend.dispatchMaxAttempts = 6;
    opts.frontend.dispatchBackoff.base = std::chrono::microseconds(500);
    opts.frontend.dispatchBackoff.cap = std::chrono::microseconds(5'000);
    opts.frontend.queryDeadlineSeconds = 30.0;
    return opts;
  }

  /// Run every query on \p cluster; each must succeed with the fault-free
  /// answer, cell for cell (silent corruption is the one unforgivable
  /// outcome). Returns the executions for accounting checks.
  static std::vector<QservFrontend::Execution> runAllAgainstOracle(
      MiniCluster& cluster) {
    std::vector<QservFrontend::Execution> execs;
    for (std::size_t qi = 0; qi < queries().size(); ++qi) {
      const auto& sql = queries()[qi];
      auto r = cluster.frontend().query(sql);
      EXPECT_TRUE(r.isOk()) << sql << ": " << r.status().toString();
      if (!r.isOk()) continue;
      EXPECT_EQ(r->dispatchMode, DispatchMode::kBatched) << sql;
      const auto& want = (*oracle_)[qi];
      EXPECT_EQ(r->result->numRows(), want->numRows()) << sql;
      EXPECT_EQ(r->result->numColumns(), want->numColumns()) << sql;
      if (r->result->numRows() != want->numRows() ||
          r->result->numColumns() != want->numColumns()) {
        continue;
      }
      for (std::size_t row = 0; row < want->numRows(); ++row) {
        for (std::size_t col = 0; col < want->numColumns(); ++col) {
          EXPECT_EQ(r->result->cell(row, col).compare(want->cell(row, col)),
                    0)
              << sql << " row " << row << " col " << col;
        }
      }
      execs.push_back(std::move(r).value());
    }
    return execs;
  }

  static CatalogConfig* catalog_;
  static datagen::PartitionedCatalog* sky_;
  static std::vector<sql::TablePtr>* oracle_;
};

CatalogConfig* BatchFaultTest::catalog_ = nullptr;
datagen::PartitionedCatalog* BatchFaultTest::sky_ = nullptr;
std::vector<sql::TablePtr>* BatchFaultTest::oracle_ = nullptr;

/// Helper: metrics-counter delta around a block.
class CounterDelta {
 public:
  CounterDelta() : before_(util::MetricsRegistry::instance().snapshot()) {}
  void stop() { after_ = util::MetricsRegistry::instance().snapshot(); }
  std::uint64_t operator()(const char* name) const {
    auto b = before_.counters.count(name) ? before_.counters.at(name) : 0;
    auto a = after_.counters.count(name) ? after_.counters.at(name) : 0;
    return a - b;
  }

 private:
  util::MetricsSnapshot before_;
  util::MetricsSnapshot after_;
};

TEST_F(BatchFaultTest, BatchWritesRejectedFallBackToPerChunk) {
  // Every write to a /batch/ path fails; the per-chunk paths are untouched.
  // The dispatcher must route every chunk through the per-chunk retry path
  // and still answer correctly — batching is an optimization, never a new
  // failure mode.
  ClusterOptions opts = faultyOptions();
  auto plan = xrd::FaultPlan::parse("write:path=/batch/,fail");
  ASSERT_TRUE(plan.isOk()) << plan.status().toString();
  opts.faults = *plan;
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();

  CounterDelta delta;
  auto execs = runAllAgainstOracle(**cluster);
  delta.stop();

  ASSERT_EQ(execs.size(), queries().size());
  std::size_t totalChunks = 0;
  for (const auto& e : execs) totalChunks += e.chunksDispatched;
  EXPECT_GT(delta("faultinj.write_faults"), 0u);
  // Every chunk of every query was recovered through the per-chunk path.
  EXPECT_GE(delta("dispatch.batch_chunk_retries"), totalChunks);
  // Batch writes were attempted (the counter ticks before the injector
  // rejects them) but no batch ever established a result stream.
  EXPECT_GT(delta("xrd.batch_writes"), 0u);
  EXPECT_EQ(delta("xrd.stream_reads"), 0u);
  EXPECT_GE(delta("dispatch.chunks_ok"), totalChunks);
}

TEST_F(BatchFaultTest, WorkerDiesMidStreamOnlyItsChunksRetry) {
  // Worker 0 serves one stream read then latches down. Chunks already
  // delivered stay merged; undelivered chunks of its batch are retried on
  // the replica worker — chunk-level failure handling, not query-level.
  ClusterOptions opts = faultyOptions();
  auto plan = xrd::FaultPlan::parse("read:after=1,down");
  ASSERT_TRUE(plan.isOk()) << plan.status().toString();
  opts.workerFaults[0] = *plan;
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();

  CounterDelta delta;
  auto execs = runAllAgainstOracle(**cluster);
  delta.stop();

  ASSERT_EQ(execs.size(), queries().size());
  EXPECT_TRUE((*cluster)->injector(0)->isDown());
  // The dead worker cost chunk retries with replica exclusion, and the
  // retried chunks came back from elsewhere.
  EXPECT_GT(delta("dispatch.batch_chunk_retries"), 0u);
  EXPECT_GT(delta("dispatch.replica_exclusions"), 0u);
  std::size_t totalChunks = 0;
  for (const auto& e : execs) totalChunks += e.chunksDispatched;
  EXPECT_GE(delta("dispatch.chunks_ok"), totalChunks);
}

TEST_F(BatchFaultTest, CorruptStreamFramesCaughtByChecksumNeverMerged) {
  // Worker 0 corrupts most of its stream reads. Corruption lands either in
  // a frame header (counted as a damaged frame, chunk re-fetched) or in a
  // frame body (caught by the per-chunk MD5 trailer). Both end in a clean
  // per-chunk retry on the replica; the merger must never see corrupt data.
  ClusterOptions opts = faultyOptions();
  auto plan = xrd::FaultPlan::parse("seed=20260808; read:p=0.6,corrupt");
  ASSERT_TRUE(plan.isOk()) << plan.status().toString();
  opts.workerFaults[0] = *plan;
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();

  CounterDelta delta;
  auto execs = runAllAgainstOracle(**cluster);
  delta.stop();

  ASSERT_EQ(execs.size(), queries().size());
  EXPECT_GT(delta("faultinj.corruptions"), 0u);
  EXPECT_GT(delta("dispatch.checksum_mismatches") +
                delta("dispatch.damaged_frames"),
            0u);
  EXPECT_GT(delta("dispatch.batch_chunk_retries"), 0u);
  // The integrity gate: nothing corrupt ever reached the merger.
  EXPECT_EQ(delta("merger.checksum_rejects"), 0u);
}

}  // namespace
}  // namespace qserv::core
