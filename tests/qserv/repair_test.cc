/// \file repair_test.cc
/// \brief The self-healing control plane end to end: health detection with
/// hysteresis, automatic re-replication with MD5-verified copies, redirector
/// re-admission after recovery, rebalance, and ingest-while-serving (the
/// ROADMAP "nightly data release during traffic" gate).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "qserv/cluster.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace qserv::core {
namespace {

std::uint64_t delta(const util::MetricsSnapshot& before,
                    const util::MetricsSnapshot& after, const char* name) {
  auto b = before.counters.count(name) ? before.counters.at(name) : 0;
  auto a = after.counters.count(name) ? after.counters.at(name) : 0;
  return a - b;
}

/// Objects across all chunks (the COUNT(*) FROM Object oracle).
std::int64_t objectCount(const datagen::PartitionedCatalog& catalog) {
  std::int64_t n = 0;
  for (const auto& c : catalog.chunks) {
    n += static_cast<std::int64_t>(c.objects->numRows());
  }
  return n;
}

/// Split \p catalog into (first `firstChunks` chunks, the rest), index
/// entries partitioned to follow their chunk.
std::pair<datagen::PartitionedCatalog, datagen::PartitionedCatalog> splitCatalog(
    const datagen::PartitionedCatalog& catalog, std::size_t firstChunks) {
  datagen::PartitionedCatalog a, b;
  std::unordered_set<std::int32_t> inFirst;
  for (std::size_t i = 0; i < catalog.chunks.size(); ++i) {
    if (i < firstChunks) {
      a.chunks.push_back(catalog.chunks[i]);
      inFirst.insert(catalog.chunks[i].chunkId);
    } else {
      b.chunks.push_back(catalog.chunks[i]);
    }
  }
  for (const auto& e : catalog.index) {
    (inFirst.contains(e.chunkId) ? a : b).index.push_back(e);
  }
  return {std::move(a), std::move(b)};
}

class RepairTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new CatalogConfig(CatalogConfig::lsst(18, 6, 0.05));
    SkyDataOptions opts;
    opts.basePatchObjects = 500;
    opts.withSources = false;
    opts.region = sphgeom::SphericalBox(0, -7, 14, 7);
    auto sky = buildSkyCatalog(*catalog_, opts);
    ASSERT_TRUE(sky.isOk()) << sky.status().toString();
    sky_ = new datagen::PartitionedCatalog(std::move(sky).value());
    oracleCount_ = objectCount(*sky_);
    ASSERT_GT(oracleCount_, 0);
    ASSERT_GT(sky_->chunks.size(), 4u);
  }

  static void TearDownTestSuite() {
    delete sky_;
    delete catalog_;
    sky_ = nullptr;
    catalog_ = nullptr;
  }

  static ClusterOptions baseOptions() {
    ClusterOptions opts;
    opts.frontend.catalog = *catalog_;
    opts.numWorkers = 3;
    opts.replication = 2;
    opts.frontend.dispatchBackoff.base = std::chrono::microseconds(500);
    opts.frontend.dispatchBackoff.cap = std::chrono::microseconds(5'000);
    opts.repair.copyBackoff.base = std::chrono::microseconds(500);
    opts.repair.copyBackoff.cap = std::chrono::microseconds(5'000);
    return opts;
  }

  /// Drive probe rounds until \p workerId reaches \p want (or fail).
  static void probeUntil(RepairController& repair, const std::string& workerId,
                         RepairController::WorkerHealth want, int maxRounds) {
    for (int i = 0; i < maxRounds; ++i) {
      repair.probeOnce();
      if (repair.health(workerId) == want) return;
    }
    FAIL() << workerId << " never reached "
           << RepairController::healthName(want) << ", stuck at "
           << RepairController::healthName(repair.health(workerId));
  }

  static CatalogConfig* catalog_;
  static datagen::PartitionedCatalog* sky_;
  static std::int64_t oracleCount_;
};

CatalogConfig* RepairTest::catalog_ = nullptr;
datagen::PartitionedCatalog* RepairTest::sky_ = nullptr;
std::int64_t RepairTest::oracleCount_ = 0;

// 1. The probe state machine: hysteresis in both directions — one failure
//    makes a worker suspect (not down), downAfter failures down it and
//    quarantines it in the redirector, upAfter successes bring it back.
TEST_F(RepairTest, ProbeStateMachineHysteresis) {
  auto opts = baseOptions();
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
  auto& repair = (*cluster)->repairController();
  const auto& cfg = repair.config();

  EXPECT_FALSE(repair.probeOnce());  // healthy cluster: nothing newly down
  EXPECT_EQ(repair.health("w0"), RepairController::WorkerHealth::kUp);

  (*cluster)->server(0).setUp(false);
  EXPECT_FALSE(repair.probeOnce());  // 1 failure: suspect, not down yet
  EXPECT_EQ(repair.health("w0"), RepairController::WorkerHealth::kSuspect);
  EXPECT_FALSE((*cluster)->redirector()->isQuarantined("w0"));

  bool newlyDown = false;
  for (int i = 1; i < cfg.downAfter; ++i) newlyDown |= repair.probeOnce();
  EXPECT_TRUE(newlyDown);
  EXPECT_EQ(repair.health("w0"), RepairController::WorkerHealth::kDown);
  EXPECT_TRUE((*cluster)->redirector()->isQuarantined("w0"));
  EXPECT_FALSE(repair.probeOnce());  // already down: not *newly* down again

  (*cluster)->server(0).setUp(true);
  repair.probeOnce();  // 1 success: still down (hysteresis)
  EXPECT_EQ(repair.health("w0"), RepairController::WorkerHealth::kDown);
  probeUntil(repair, "w0", RepairController::WorkerHealth::kUp,
             cfg.upAfter + 1);
  EXPECT_FALSE((*cluster)->redirector()->isQuarantined("w0"));

  // The status view reflects all of it.
  auto status = repair.status();
  ASSERT_EQ(status.size(), 3u);
  EXPECT_EQ(status[0].id, "w0");
  EXPECT_GT(status[0].chunks, 0u);
  EXPECT_NE(repair.statusText().find("under-replicated"), std::string::npos);
}

// 2. The acceptance kill-a-worker drill: a worker dies, the controller
//    detects it, re-replicates every under-replicated chunk back to 2x onto
//    the survivors with verified copies, and queries stay bit-correct the
//    whole time — no manual intervention, no restart.
TEST_F(RepairTest, KillWorkerRepairRestoresRedundancy) {
  auto opts = baseOptions();
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
  auto& repair = (*cluster)->repairController();
  auto& frontend = (*cluster)->frontend();

  ASSERT_TRUE(repair.underReplicatedChunks().empty());

  (*cluster)->server(0).setUp(false);
  probeUntil(repair, "w0", RepairController::WorkerHealth::kDown, 4);

  // Every chunk that had a replica on w0 is now below target.
  auto deficit = repair.underReplicatedChunks();
  ASSERT_FALSE(deficit.empty());

  // Queries already survive on the remaining copy (dispatch failover).
  auto during = frontend.query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(during.isOk()) << during.status().toString();
  EXPECT_EQ(during->result->cell(0, 0).asInt(), oracleCount_);

  auto before = util::MetricsRegistry::instance().snapshot();
  auto copied = repair.repairOnce();
  auto after = util::MetricsRegistry::instance().snapshot();
  ASSERT_TRUE(copied.isOk()) << copied.status().toString();
  EXPECT_EQ(*copied, static_cast<int>(deficit.size()));
  EXPECT_TRUE(repair.underReplicatedChunks().empty());

  // Placement proof: every chunk has >= 2 live replicas on the survivors.
  auto placement = (*cluster)->redirector()->placementSnapshot();
  for (const auto& [chunk, ids] : placement) {
    int live = 0;
    for (const auto& id : ids) {
      if (id != "w0") ++live;
    }
    EXPECT_GE(live, 2) << "chunk " << chunk;
  }

  // Accounting: every copy is visible in repair.* metrics and trace spans.
  EXPECT_EQ(delta(before, after, "repair.chunks_replicated"), deficit.size());
  EXPECT_GT(delta(before, after, "repair.copy_bytes"), 0u);
  EXPECT_EQ(delta(before, after, "repair.copy_failures"), 0u);
  EXPECT_EQ(delta(before, after, "repair.runs"), 1u);
  auto trace = repair.lastTrace();
  ASSERT_TRUE(trace);
  std::size_t copySpans = 0;
  for (const auto& s : trace->spans()) {
    if (s.component == "repair" && s.name.rfind("copy ", 0) == 0) ++copySpans;
  }
  EXPECT_EQ(copySpans, deficit.size());

  // And the cluster still answers correctly, now with redundancy restored.
  auto r = frontend.query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(r->result->cell(0, 0).asInt(), oracleCount_);
  EXPECT_TRUE(repair.repairOnce().isOk());  // idempotent: nothing left to do
  EXPECT_EQ(*repair.repairOnce(), 0);
}

// 3. Copies are integrity-checked: a source that serves corrupt chunk
//    snapshots is caught by the MD5 trailer and the copy retries from the
//    next replica — corrupt data never gets installed.
TEST_F(RepairTest, CorruptSnapshotRetriedFromCleanReplica) {
  auto opts = baseOptions();
  auto plan = xrd::FaultPlan::parse("read:corrupt");
  ASSERT_TRUE(plan.isOk());
  opts.workerFaults[1] = *plan;  // w1 corrupts everything it serves
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
  auto& repair = (*cluster)->repairController();

  // A chunk whose replicas are w1 (corrupt) and w2 (clean); install on w0.
  // Placement is (index + r) % 3, so w1's primary chunks live on w1 and w2.
  ASSERT_FALSE((*cluster)->chunksOfWorker(1).empty());
  std::int32_t chunk = (*cluster)->chunksOfWorker(1).front();
  ASSERT_FALSE((*cluster)->worker(0).exportsChunk(chunk));

  auto before = util::MetricsRegistry::instance().snapshot();
  auto status = repair.replicateChunk(chunk, {"w1", "w2"}, "w0");
  auto after = util::MetricsRegistry::instance().snapshot();
  ASSERT_TRUE(status.isOk()) << status.toString();
  EXPECT_TRUE((*cluster)->worker(0).exportsChunk(chunk));
  EXPECT_GT(delta(before, after, "repair.checksum_mismatches"), 0u);
  EXPECT_EQ(delta(before, after, "repair.chunks_replicated"), 1u);

  // A copy with only the corrupt source exhausts its attempts and fails —
  // it must never install what it could not verify.
  std::int32_t chunk2 = (*cluster)->chunksOfWorker(1).back();
  if (!(*cluster)->worker(0).exportsChunk(chunk2)) {
    auto bad = repair.replicateChunk(chunk2, {"w1"}, "w0");
    EXPECT_FALSE(bad.isOk());
    EXPECT_FALSE((*cluster)->worker(0).exportsChunk(chunk2));
  }
}

// 4. Re-admission after recovery (the staleness fix): while a worker is
//    down, lookups pin its chunks to the surviving replicas. When it comes
//    back, the pins for its chunks are evicted and it serves real query
//    traffic again — without the fix it would idle forever behind the cache.
TEST_F(RepairTest, RevivedWorkerIsReadmittedAndServesTraffic) {
  auto opts = baseOptions();
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
  auto& repair = (*cluster)->repairController();
  auto& frontend = (*cluster)->frontend();

  (*cluster)->server(0).setUp(false);
  probeUntil(repair, "w0", RepairController::WorkerHealth::kDown, 4);
  // Pin the lookup cache to the failover replicas while w0 is gone.
  for (int i = 0; i < 4; ++i) {
    auto r = frontend.query("SELECT COUNT(*) FROM Object");
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r->result->cell(0, 0).asInt(), oracleCount_);
  }

  (*cluster)->server(0).setUp(true);
  auto before = util::MetricsRegistry::instance().snapshot();
  probeUntil(repair, "w0", RepairController::WorkerHealth::kUp,
             repair.config().upAfter + 1);
  auto after = util::MetricsRegistry::instance().snapshot();
  EXPECT_FALSE((*cluster)->redirector()->isQuarantined("w0"));
  // The fix at work: recovery evicted the foreign pins on w0's chunks.
  EXPECT_GT(delta(before, after, "xrd.redirector.recovery_evictions"), 0u);

  // And the revived worker actually serves again: its data-plane read
  // traffic grows once queries resume (round-robin re-includes it).
  std::uint64_t baseline = (*cluster)->server(0).bytesRead();
  for (int i = 0; i < 4; ++i) {
    auto r = frontend.query("SELECT COUNT(*) FROM Object");
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r->result->cell(0, 0).asInt(), oracleCount_);
  }
  EXPECT_GT((*cluster)->server(0).bytesRead(), baseline);
}

// 5. Rebalance migrates replicas from the most loaded worker to the least
//    loaded, copy-then-drop: replica totals are conserved, no chunk ever
//    loses its last copy, and results stay correct.
TEST_F(RepairTest, RebalanceMovesReplicasCopyThenDrop) {
  auto opts = baseOptions();
  opts.numWorkers = 2;
  opts.replication = 1;
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
  auto& repair = (*cluster)->repairController();

  // Skew the cluster by hand: give w0 a copy of every w1 chunk, so w0
  // holds everything and w1 only its half.
  for (std::int32_t chunk : (*cluster)->chunksOfWorker(1)) {
    auto s = repair.replicateChunk(chunk, {"w1"}, "w0");
    ASSERT_TRUE(s.isOk()) << s.toString();
  }
  auto countReplicas = [&] {
    std::size_t total = 0;
    for (const auto& [chunk, ids] :
         (*cluster)->redirector()->placementSnapshot()) {
      EXPECT_GE(ids.size(), 1u) << "chunk " << chunk << " lost all replicas";
      total += ids.size();
    }
    return total;
  };
  std::size_t beforeTotal = countReplicas();

  auto before = util::MetricsRegistry::instance().snapshot();
  auto moves = repair.rebalanceOnce(/*maxMoves=*/8);
  auto after = util::MetricsRegistry::instance().snapshot();
  ASSERT_TRUE(moves.isOk()) << moves.status().toString();
  EXPECT_GT(*moves, 0);
  EXPECT_EQ(delta(before, after, "repair.rebalance_moves"),
            static_cast<std::uint64_t>(*moves));
  // Copy-then-drop conserves the replica total.
  EXPECT_EQ(countReplicas(), beforeTotal);

  auto r = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(r->result->cell(0, 0).asInt(), oracleCount_);
}

// 6. Ingest while serving: new chunks are installed on live workers at the
//    replication target, the secondary index learns the new objects, and the
//    frontend's dispatchable set grows atomically — all without a restart.
TEST_F(RepairTest, IngestWhileServingPublishesNewChunksLive) {
  auto [first, second] = splitCatalog(*sky_, sky_->chunks.size() / 2);
  ASSERT_FALSE(first.chunks.empty());
  ASSERT_FALSE(second.chunks.empty());
  std::int64_t firstCount = objectCount(first);

  auto opts = baseOptions();
  auto cluster = MiniCluster::create(opts, first);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
  auto& repair = (*cluster)->repairController();
  auto& frontend = (*cluster)->frontend();

  auto r0 = frontend.query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(r0.isOk()) << r0.status().toString();
  EXPECT_EQ(r0->result->cell(0, 0).asInt(), firstCount);

  auto before = util::MetricsRegistry::instance().snapshot();
  auto s = repair.ingest(second);
  auto after = util::MetricsRegistry::instance().snapshot();
  ASSERT_TRUE(s.isOk()) << s.toString();
  EXPECT_EQ(delta(before, after, "repair.chunks_ingested"),
            second.chunks.size());

  // Every ingested chunk sits on `replicationTarget` distinct live workers.
  auto placement = (*cluster)->redirector()->placementSnapshot();
  for (const auto& chunk : second.chunks) {
    auto it = placement.find(chunk.chunkId);
    ASSERT_NE(it, placement.end()) << "chunk " << chunk.chunkId;
    EXPECT_EQ(it->second.size(),
              static_cast<std::size_t>(repair.config().replicationTarget));
  }

  // The full catalog answers now, pre-existing rows unaffected.
  auto r1 = frontend.query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(r1.isOk()) << r1.status().toString();
  EXPECT_EQ(r1->result->cell(0, 0).asInt(), oracleCount_);

  // The secondary index covers the new objects: an objectId point query
  // into an ingested chunk resolves and returns its row.
  ASSERT_FALSE(second.index.empty());
  std::int64_t newObject = second.index.front().objectId;
  auto r2 = frontend.query(util::format(
      "SELECT COUNT(*) FROM Object WHERE objectId = %lld",
      static_cast<long long>(newObject)));
  ASSERT_TRUE(r2.isOk()) << r2.status().toString();
  EXPECT_EQ(r2->result->cell(0, 0).asInt(), 1);
}

// 7. The CSV front door: raw rows -> partition -> load, concurrent with
//    serving, lands in queryable chunks with index entries.
TEST_F(RepairTest, IngestCsvPartitionsAndLoads) {
  auto opts = baseOptions();
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
  auto& repair = (*cluster)->repairController();
  auto& frontend = (*cluster)->frontend();

  // Fresh sky far from the seeded region (which covers ra 0..14): these
  // land in chunks no existing table occupies.
  const std::string objectsCsv =
      "# objectId,ra,decl\n"
      "9000000001, 180.0, 40.0\n"
      "9000000002, 180.2, 40.1\n"
      "9000000003, 180.4, 40.2\n";
  const std::string sourcesCsv =
      "# sourceId,objectId,ra,decl\n"
      "7000000001, 9000000001, 180.0, 40.0\n";

  auto n = repair.ingestCsv(objectsCsv, sourcesCsv);
  ASSERT_TRUE(n.isOk()) << n.status().toString();
  EXPECT_GE(*n, 1u);

  auto r = frontend.query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(r->result->cell(0, 0).asInt(), oracleCount_ + 3);

  auto point = frontend.query(
      "SELECT ra_PS, decl_PS FROM Object WHERE objectId = 9000000002");
  ASSERT_TRUE(point.isOk()) << point.status().toString();
  ASSERT_EQ(point->result->numRows(), 1u);
  EXPECT_NEAR(point->result->cell(0, 0).asDouble(), 180.2, 1e-9);

  // Malformed input is rejected cleanly, nothing half-ingested.
  auto bad = repair.ingestCsv("not,enough\n");
  EXPECT_FALSE(bad.isOk());
}

// 8. The ROADMAP gate: a "nightly data release" lands (ingest) and a worker
//    dies, all during live traffic with the monitor thread in charge. Every
//    concurrent query must return one of the two valid answers (old or new
//    catalog — never a torn mix), redundancy must come back to 2x on its
//    own, and the revived placement must keep answering correctly.
TEST_F(RepairTest, NightlyDataReleaseDuringTraffic) {
  auto [first, second] = splitCatalog(*sky_, sky_->chunks.size() / 2);
  std::int64_t firstCount = objectCount(first);

  auto opts = baseOptions();
  opts.repair.probeInterval = std::chrono::milliseconds(5);
  opts.repair.autoRepair = true;
  auto cluster = MiniCluster::create(opts, first);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
  auto& repair = (*cluster)->repairController();
  auto& frontend = (*cluster)->frontend();
  repair.start();
  ASSERT_TRUE(repair.running());

  // Traffic: a background thread hammers COUNT(*) and records every answer.
  std::atomic<bool> stopTraffic{false};
  std::vector<std::int64_t> answers;
  std::vector<std::string> failures;
  std::thread traffic([&] {
    while (!stopTraffic.load(std::memory_order_acquire)) {
      auto r = frontend.query("SELECT COUNT(*) FROM Object");
      if (r.isOk()) {
        answers.push_back(r->result->cell(0, 0).asInt());
      } else {
        failures.push_back(r.status().toString());
      }
    }
  });

  // The release: ingest the second half while queries fly.
  auto s = repair.ingest(second);
  ASSERT_TRUE(s.isOk()) << s.toString();

  // The outage: kill a worker; the monitor must detect and re-replicate
  // without any help from us.
  (*cluster)->server(1).setUp(false);
  util::Stopwatch watch;
  while (watch.elapsedSeconds() < 30.0) {
    if (repair.health("w1") == RepairController::WorkerHealth::kDown &&
        repair.underReplicatedChunks().empty()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stopTraffic.store(true, std::memory_order_release);
  traffic.join();
  repair.stop();

  EXPECT_EQ(repair.health("w1"), RepairController::WorkerHealth::kDown);
  EXPECT_TRUE(repair.underReplicatedChunks().empty())
      << repair.statusText();
  EXPECT_TRUE(failures.empty()) << failures.front();

  // Atomic placement: every answer is exactly the old or the new catalog,
  // and once the new set is visible it never reverts.
  ASSERT_FALSE(answers.empty());
  bool sawFull = false;
  for (std::int64_t got : answers) {
    EXPECT_TRUE(got == firstCount || got == oracleCount_) << got;
    if (got == oracleCount_) sawFull = true;
    if (sawFull) {
      EXPECT_EQ(got, oracleCount_);
    }
  }

  // The cluster is whole again: correct answers at restored redundancy.
  auto r = frontend.query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(r->result->cell(0, 0).asInt(), oracleCount_);
}

}  // namespace
}  // namespace qserv::core
