/// End-to-end tests: every paper query shape executed through the full
/// distributed stack (frontend -> rewrite -> xrd dispatch -> workers ->
/// dumps -> merge -> final aggregation) and checked against an oracle —
/// the same SQL run on a single monolithic database holding all rows.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "datagen/schemas.h"
#include "qserv/cluster.h"
#include "sphgeom/coords.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/trace.h"

namespace qserv::core {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogConfig catalog = CatalogConfig::lsst(18, 6, 0.05);
    SkyDataOptions data;
    data.basePatchObjects = 1200;
    data.withSources = true;
    // A band around the equator: a handful of duplicator copies, tens of
    // chunks.
    data.region = sphgeom::SphericalBox(0, -7, 40, 7);
    auto cat = buildSkyCatalog(catalog, data);
    ASSERT_TRUE(cat.isOk()) << cat.status().toString();
    catalogData_ = new datagen::PartitionedCatalog(std::move(cat).value());

    ClusterOptions opts;
    opts.numWorkers = 4;
    opts.replication = 1;
    opts.frontend.catalog = catalog;
    auto cluster = MiniCluster::create(opts, *catalogData_);
    ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
    cluster_ = cluster->release();

    // Oracle: single database with monolithic Object/Source tables.
    oracle_ = new sql::Database("oracle");
    auto object = std::make_shared<sql::Table>("Object",
                                               datagen::objectSchema());
    auto source = std::make_shared<sql::Table>("Source",
                                               datagen::sourceSchema());
    for (const auto& chunk : catalogData_->chunks) {
      for (std::size_t r = 0; r < chunk.objects->numRows(); ++r) {
        ASSERT_TRUE(object->appendRow(chunk.objects->row(r)).isOk());
      }
      for (std::size_t r = 0; r < chunk.sources->numRows(); ++r) {
        ASSERT_TRUE(source->appendRow(chunk.sources->row(r)).isOk());
      }
    }
    ASSERT_TRUE(oracle_->registerTable(object).isOk());
    ASSERT_TRUE(oracle_->registerTable(source).isOk());
    ASSERT_TRUE(oracle_->createIndex("Object", "objectId").isOk());
    ASSERT_TRUE(oracle_->createIndex("Source", "objectId").isOk());
  }

  static void TearDownTestSuite() {
    delete cluster_;
    cluster_ = nullptr;
    delete oracle_;
    oracle_ = nullptr;
    delete catalogData_;
    catalogData_ = nullptr;
  }

  QservFrontend& frontend() { return cluster_->frontend(); }

  sql::TablePtr oracleQuery(const std::string& sql) {
    auto r = oracle_->execute(sql);
    EXPECT_TRUE(r.isOk()) << r.status().toString() << " for: " << sql;
    return r.isOk() ? *r : nullptr;
  }

  QservFrontend::Execution distQuery(const std::string& sql) {
    auto r = frontend().query(sql);
    EXPECT_TRUE(r.isOk()) << r.status().toString() << " for: " << sql;
    return r.isOk() ? std::move(r).value() : QservFrontend::Execution{};
  }

  /// Sample an existing objectId.
  std::int64_t someObjectId(std::size_t n = 0) {
    const auto& idx = catalogData_->index;
    return idx[(n * 7919) % idx.size()].objectId;
  }

  static datagen::PartitionedCatalog* catalogData_;
  static MiniCluster* cluster_;
  static sql::Database* oracle_;
};

datagen::PartitionedCatalog* IntegrationTest::catalogData_ = nullptr;
MiniCluster* IntegrationTest::cluster_ = nullptr;
sql::Database* IntegrationTest::oracle_ = nullptr;

// ---------------------------------------------------------------- LV shapes

TEST_F(IntegrationTest, Lv1ObjectRetrieval) {
  std::int64_t id = someObjectId(1);
  std::string sql =
      "SELECT * FROM Object WHERE objectId = " + std::to_string(id);
  auto exec = distQuery(sql);
  auto oracle = oracleQuery(sql);
  ASSERT_TRUE(exec.result && oracle);
  ASSERT_EQ(exec.result->numRows(), 1u);
  ASSERT_EQ(oracle->numRows(), 1u);
  // Same values, all columns.
  for (std::size_t c = 0; c < oracle->numColumns(); ++c) {
    EXPECT_EQ(exec.result->cell(0, c).compare(oracle->cell(0, c)), 0);
  }
  // Index pruning: only one chunk dispatched.
  EXPECT_EQ(exec.chunksDispatched, 1u);
}

TEST_F(IntegrationTest, Lv2TimeSeries) {
  std::int64_t id = someObjectId(2);
  std::string sql =
      "SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr), "
      "ra, decl FROM Source WHERE objectId = " +
      std::to_string(id);
  auto exec = distQuery(sql);
  auto oracle = oracleQuery(sql);
  ASSERT_TRUE(exec.result && oracle);
  EXPECT_EQ(exec.result->numRows(), oracle->numRows());
  EXPECT_GT(exec.result->numRows(), 10u);  // k ~= 41 detections
  EXPECT_EQ(exec.chunksDispatched, 1u);
}

TEST_F(IntegrationTest, Lv2MissingObjectGivesNullResult) {
  // The paper notes randomized ids sometimes hit clipped Source coverage
  // and return empty results; an unknown id dispatches nowhere.
  auto exec = distQuery("SELECT ra, decl FROM Source WHERE objectId = 999999999");
  ASSERT_TRUE(exec.result);
  EXPECT_EQ(exec.result->numRows(), 0u);
  EXPECT_EQ(exec.chunksDispatched, 0u);
}

TEST_F(IntegrationTest, Lv3SpatiallyRestrictedFilter) {
  std::string sql =
      "SELECT COUNT(*) FROM Object "
      "WHERE ra_PS BETWEEN 1 AND 2 AND decl_PS BETWEEN 3 AND 4 "
      "AND fluxToAbMag(zFlux_PS) BETWEEN 15 AND 25";
  auto exec = distQuery(sql);
  auto oracle = oracleQuery(sql);
  ASSERT_TRUE(exec.result && oracle);
  ASSERT_EQ(exec.result->numRows(), 1u);
  EXPECT_EQ(exec.result->cell(0, 0).asInt(), oracle->cell(0, 0).asInt());
  EXPECT_GT(oracle->cell(0, 0).asInt(), 0);
}

TEST_F(IntegrationTest, AreaspecPrunesChunks) {
  auto all = frontend().chunksFor("SELECT COUNT(*) FROM Object");
  auto some = frontend().chunksFor(
      "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(1, 1, 3, 3)");
  ASSERT_TRUE(all.isOk() && some.isOk());
  EXPECT_GT(some->size(), 0u);
  EXPECT_LT(some->size(), all->size());
}

TEST_F(IntegrationTest, AreaspecCountMatchesExplicitBoxFilter) {
  auto viaAreaspec = distQuery(
      "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(2, -3, 8, 3)");
  auto viaFilter = oracleQuery(
      "SELECT COUNT(*) FROM Object WHERE "
      "qserv_ptInSphericalBox(ra_PS, decl_PS, 2, -3, 8, 3) = 1");
  ASSERT_TRUE(viaAreaspec.result && viaFilter);
  EXPECT_EQ(viaAreaspec.result->cell(0, 0).asInt(),
            viaFilter->cell(0, 0).asInt());
  EXPECT_GT(viaFilter->cell(0, 0).asInt(), 0);
}

// ---------------------------------------------------------------- HV shapes

TEST_F(IntegrationTest, Hv1FullSkyCount) {
  auto exec = distQuery("SELECT COUNT(*) FROM Object");
  auto oracle = oracleQuery("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(exec.result && oracle);
  EXPECT_EQ(exec.result->cell(0, 0).asInt(), oracle->cell(0, 0).asInt());
  // Every data-bearing chunk participated.
  EXPECT_EQ(exec.chunksDispatched, cluster_->chunkIds().size());
}

TEST_F(IntegrationTest, Hv2FullSkyFilter) {
  std::string sql =
      "SELECT objectId, ra_PS, decl_PS, uFlux_PS, gFlux_PS, rFlux_PS, "
      "iFlux_PS, zFlux_PS, yFlux_PS FROM Object "
      // The paper's cut is i-z > 4 (selects ~4e-5 of rows); on this small
      // test region we use a softer threshold with the same shape so the
      // selected set is non-empty (~1% of rows).
      "WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 0.5";
  auto exec = distQuery(sql);
  auto oracle = oracleQuery(sql);
  ASSERT_TRUE(exec.result && oracle);
  EXPECT_EQ(exec.result->numRows(), oracle->numRows());
  EXPECT_GT(oracle->numRows(), 0u);
  EXPECT_LT(oracle->numRows(), exec.rowsMerged + 1);  // a selective cut
}

TEST_F(IntegrationTest, Hv3DensityGroupByChunk) {
  std::string sql =
      "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId FROM Object "
      "GROUP BY chunkId ORDER BY chunkId";
  auto exec = distQuery(sql);
  auto oracle = oracleQuery(sql);
  ASSERT_TRUE(exec.result && oracle);
  ASSERT_EQ(exec.result->numRows(), oracle->numRows());
  for (std::size_t r = 0; r < oracle->numRows(); ++r) {
    EXPECT_EQ(exec.result->cell(r, 0).asInt(), oracle->cell(r, 0).asInt());
    EXPECT_NEAR(exec.result->cell(r, 1).asDouble(),
                oracle->cell(r, 1).asDouble(), 1e-9);
    EXPECT_NEAR(exec.result->cell(r, 2).asDouble(),
                oracle->cell(r, 2).asDouble(), 1e-9);
    EXPECT_EQ(exec.result->cell(r, 3).asInt(), oracle->cell(r, 3).asInt());
  }
}

TEST_F(IntegrationTest, AvgSplitMatchesOracle) {
  // The §5.3 worked example end to end.
  std::string sql =
      "SELECT AVG(uFlux_SG) FROM Object "
      "WHERE qserv_areaspec_box(0.0, 0.0, 10.0, 6.0) AND uRadius_PS > 0.04";
  auto exec = distQuery(sql);
  auto oracle = oracleQuery(
      "SELECT AVG(uFlux_SG) FROM Object "
      "WHERE qserv_ptInSphericalBox(ra_PS, decl_PS, 0.0, 0.0, 10.0, 6.0) = 1 "
      "AND uRadius_PS > 0.04");
  ASSERT_TRUE(exec.result && oracle);
  ASSERT_EQ(exec.result->numRows(), 1u);
  double got = exec.result->cell(0, 0).asDouble();
  double want = oracle->cell(0, 0).asDouble();
  EXPECT_NEAR(got, want, std::fabs(want) * 1e-9);
}

// --------------------------------------------------------------- SHV shapes

TEST_F(IntegrationTest, Shv1NearNeighborMatchesBruteForce) {
  // Distributed near-neighbor pair count vs brute-force O(n^2) oracle over
  // the same region. 0.03 deg < overlap margin (0.05) so counts are exact.
  const double radius = 0.03;
  std::string region = "qserv_areaspec_box(3, -2, 6, 1)";
  std::string sql = util::format(
      "SELECT count(*) FROM Object o1, Object o2 WHERE %s AND "
      "qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < %.17g",
      region.c_str(), radius);
  auto exec = distQuery(sql);
  ASSERT_TRUE(exec.result);
  ASSERT_EQ(exec.result->numRows(), 1u);
  std::int64_t got = exec.result->cell(0, 0).asInt();

  // Brute force on the oracle: o1 restricted to the region, o2 anywhere.
  auto oracle = oracleQuery(util::format(
      "SELECT count(*) FROM Object o1, Object o2 WHERE "
      "qserv_ptInSphericalBox(o1.ra_PS, o1.decl_PS, 3, -2, 6, 1) = 1 AND "
      "qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < %.17g",
      radius));
  ASSERT_TRUE(oracle);
  std::int64_t want = oracle->cell(0, 0).asInt();
  EXPECT_EQ(got, want);
  EXPECT_GT(got, 0);
}

TEST_F(IntegrationTest, Shv2SourcesNotNearObjects) {
  std::string sql =
      "SELECT o.objectId, s.sourceId, s.ra, s.decl, o.ra_PS, o.decl_PS "
      "FROM Object o, Source s "
      "WHERE qserv_areaspec_box(1, -5, 12, 5) "
      "AND o.objectId = s.objectId "
      "AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > 0.0045";
  auto exec = distQuery(sql);
  auto oracle = oracleQuery(
      "SELECT o.objectId, s.sourceId FROM Object o, Source s "
      "WHERE qserv_ptInSphericalBox(o.ra_PS, o.decl_PS, 1, -5, 12, 5) = 1 "
      "AND o.objectId = s.objectId "
      "AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > 0.0045");
  ASSERT_TRUE(exec.result && oracle);
  EXPECT_EQ(exec.result->numRows(), oracle->numRows());
  EXPECT_GT(oracle->numRows(), 0u);  // the stray-source population
}

// ------------------------------------------------------------ system traits

TEST_F(IntegrationTest, SimTasksAccompanyExecution) {
  auto exec = distQuery("SELECT COUNT(*) FROM Object");
  EXPECT_EQ(exec.simTasks.size(), exec.chunksDispatched);
  EXPECT_GT(exec.soloTiming.elapsedSec(),
            frontend().costParams().perQueryFixedOverheadSec);
}

TEST_F(IntegrationTest, ConcurrentQueriesFromMultipleThreads) {
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::int64_t expect = 0;
  {
    auto oracle = oracleQuery("SELECT COUNT(*) FROM Object");
    ASSERT_TRUE(oracle);
    expect = oracle->cell(0, 0).asInt();
  }
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string sql =
          (t % 2 == 0)
              ? "SELECT COUNT(*) FROM Object"
              : "SELECT * FROM Object WHERE objectId = " +
                    std::to_string(someObjectId(static_cast<std::size_t>(t)));
      auto r = frontend().query(sql);
      if (!r.isOk()) {
        failures.fetch_add(1);
        return;
      }
      if (t % 2 == 0 && r->result->cell(0, 0).asInt() != expect) {
        failures.fetch_add(1);
      }
      if (t % 2 == 1 && r->result->numRows() != 1) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(IntegrationTest, ClusterSizeEmulationShrinksDispatch) {
  // §6.3: the frontend dispatches only chunks of the emulated cluster.
  auto saved = frontend().availableChunks();
  std::vector<std::int32_t> half(saved.begin(),
                                 saved.begin() + saved.size() / 2);
  frontend().setAvailableChunks(half);
  auto exec = distQuery("SELECT COUNT(*) FROM Object");
  EXPECT_EQ(exec.chunksDispatched, half.size());
  frontend().setAvailableChunks(saved);
}

TEST_F(IntegrationTest, NonPartitionedQueryRunsOnFrontend) {
  auto exec = distQuery("SELECT 6 * 7 AS answer");
  ASSERT_TRUE(exec.result);
  EXPECT_EQ(exec.result->cell(0, 0).asInt(), 42);
  EXPECT_EQ(exec.chunksDispatched, 0u);
}

TEST_F(IntegrationTest, UnknownTableFails) {
  EXPECT_FALSE(frontend().query("SELECT * FROM NoSuch").isOk());
}

TEST_F(IntegrationTest, OrderByLimitAcrossChunks) {
  std::string sql =
      "SELECT objectId FROM Object WHERE ra_PS BETWEEN 0 AND 20 "
      "ORDER BY objectId DESC LIMIT 7";
  auto exec = distQuery(sql);
  auto oracle = oracleQuery(sql);
  ASSERT_TRUE(exec.result && oracle);
  ASSERT_EQ(exec.result->numRows(), oracle->numRows());
  for (std::size_t r = 0; r < oracle->numRows(); ++r) {
    EXPECT_EQ(exec.result->cell(r, 0).asInt(), oracle->cell(r, 0).asInt());
  }
}

// ------------------------------------------------------------- observability

TEST_F(IntegrationTest, QueryTraceSpansEveryLayer) {
  auto exec = distQuery("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(exec.trace);
  EXPECT_EQ(exec.trace->id(), exec.queryId);
  EXPECT_GT(exec.chunksDispatched, 1u);

  // The trace crosses every layer of the stack.
  auto components = exec.trace->components();
  for (const char* want : {"czar", "dispatcher", "xrd", "worker", "merger"}) {
    EXPECT_NE(std::find(components.begin(), components.end(), want),
              components.end())
        << "missing component: " << want;
  }

  auto spans = exec.trace->spans();
  std::size_t dispatchChunkSpans = 0;
  std::size_t workerExecSpans = 0;
  std::size_t workerQueueWaitSpans = 0;
  std::vector<std::string> czarPhases;
  for (const auto& s : spans) {
    EXPECT_GE(s.endUs, s.startUs) << s.component << "/" << s.name;
    if (s.component == "dispatcher" && s.name.rfind("chunk ", 0) == 0) {
      ++dispatchChunkSpans;
    }
    if (s.component == "worker" && s.name.rfind("exec ", 0) == 0) {
      ++workerExecSpans;
    }
    if (s.component == "worker" && s.name.rfind("queue-wait ", 0) == 0) {
      ++workerQueueWaitSpans;
    }
    if (s.component == "czar") czarPhases.push_back(s.name);
  }
  // One dispatcher span (and one worker execution) per dispatched chunk.
  EXPECT_EQ(dispatchChunkSpans, exec.chunksDispatched);
  EXPECT_EQ(workerExecSpans, exec.chunksDispatched);
  EXPECT_EQ(workerQueueWaitSpans, exec.chunksDispatched);
  // The czar phases of §4's pipeline all appear (merging is pipelined
  // inside the dispatch phase, so it has no standalone czar span).
  for (const char* phase : {"parse", "analyze", "chunk-prune", "rewrite",
                            "dispatch", "final-aggregation"}) {
    EXPECT_NE(std::find(czarPhases.begin(), czarPhases.end(), phase),
              czarPhases.end())
        << "missing czar phase: " << phase;
  }

  // The export is loadable Chrome trace_event JSON.
  std::string json = exec.trace->toChromeJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  // The czar released the registry entry once the query finished.
  EXPECT_EQ(util::TraceRegistry::instance().find(exec.queryId), nullptr);
}

TEST_F(IntegrationTest, SingleChunkQueryTraceIsPruned) {
  std::int64_t id = someObjectId(5);
  auto exec = distQuery("SELECT * FROM Object WHERE objectId = " +
                        std::to_string(id));
  ASSERT_TRUE(exec.trace);
  std::size_t chunkSpans = 0;
  for (const auto& s : exec.trace->spans()) {
    if (s.component == "dispatcher" && s.name.rfind("chunk ", 0) == 0) {
      ++chunkSpans;
    }
  }
  EXPECT_EQ(chunkSpans, 1u);
}

TEST_F(IntegrationTest, WorkerQueueMetricsPopulated) {
  auto& reg = util::MetricsRegistry::instance();
  auto before = reg.snapshot();
  auto exec = distQuery("SELECT COUNT(*) FROM Object");
  auto after = reg.snapshot();

  // Every dispatched chunk passed through a worker queue and recorded its
  // wait and execution time.
  auto delta = [&](const char* name) {
    auto b = before.counters.count(name) ? before.counters.at(name) : 0;
    return after.counters.at(name) - b;
  };
  EXPECT_GE(delta("worker.tasks_enqueued"), exec.chunksDispatched);
  EXPECT_GE(delta("worker.tasks_executed"), exec.chunksDispatched);
  auto waitBefore = before.histograms.count("worker.queue_wait_seconds")
                        ? before.histograms.at("worker.queue_wait_seconds").count
                        : 0;
  const auto& wait = after.histograms.at("worker.queue_wait_seconds");
  EXPECT_GE(wait.count - waitBefore,
            static_cast<std::int64_t>(exec.chunksDispatched));
  EXPECT_GE(wait.max, 0.0);
  const auto& execHist = after.histograms.at("worker.execute_seconds");
  EXPECT_GT(execHist.count, 0);
  EXPECT_GT(execHist.max, 0.0);

  // Queue-depth and busy-slot gauges are back to idle after the query.
  EXPECT_EQ(after.gauges.at("worker.queue_depth"), 0);
  EXPECT_EQ(after.gauges.at("worker.busy_slots"), 0);

  // The dispatch and merge layers kept pace with the chunk count. Batched
  // dispatch (the default) writes once per (query, worker) instead of once
  // per chunk — that is the point — but every chunk still comes back as its
  // own result-stream read.
  EXPECT_GE(delta("dispatch.chunks_ok"), exec.chunksDispatched);
  EXPECT_GE(delta("merger.dumps_replayed"), exec.chunksDispatched);
  EXPECT_GT(exec.dispatchBatches, 0u);
  EXPECT_GE(delta("xrd.batch_writes"), exec.dispatchBatches);
  EXPECT_GE(delta("xrd.write_transactions"), exec.dispatchBatches);
  EXPECT_GE(delta("xrd.stream_reads"), exec.chunksDispatched);
}

TEST_F(IntegrationTest, ProcessListShowsFinishedQuery) {
  std::string sql = "SELECT COUNT(*) FROM Object";
  auto exec = distQuery(sql);
  auto list = frontend().processList();
  auto it = std::find_if(list.begin(), list.end(), [&](const auto& q) {
    return q.id == exec.queryId;
  });
  ASSERT_NE(it, list.end());
  EXPECT_TRUE(it->finished);
  EXPECT_EQ(it->state, "done");
  EXPECT_EQ(it->sql, sql);
  EXPECT_EQ(it->chunksTotal, exec.chunksDispatched);
  EXPECT_EQ(it->chunksCompleted, it->chunksTotal);
  EXPECT_GT(it->elapsedSeconds, 0.0);
}

TEST_F(IntegrationTest, ProcessListRecordsFailedQuery) {
  auto before = frontend().processList().size();
  EXPECT_FALSE(frontend().query("SELECT * FROM NoSuch").isOk());
  auto list = frontend().processList();
  EXPECT_EQ(list.size(), std::min(before + 1, std::size_t{32}));
  // Newest finished entry first.
  auto it = std::find_if(list.begin(), list.end(),
                         [](const auto& q) { return q.finished; });
  ASSERT_NE(it, list.end());
  EXPECT_EQ(it->state.rfind("failed: ", 0), 0u) << it->state;
}

// ------------------------------------------------------------ fault handling

TEST(IntegrationFailover, ReplicatedClusterSurvivesWorkerLoss) {
  CatalogConfig catalog = CatalogConfig::lsst(18, 6, 0.05);
  SkyDataOptions data;
  data.basePatchObjects = 300;
  data.withSources = false;
  data.region = sphgeom::SphericalBox(0, -7, 10, 7);
  auto cat = buildSkyCatalog(catalog, data);
  ASSERT_TRUE(cat.isOk());

  ClusterOptions opts;
  opts.numWorkers = 3;
  opts.replication = 2;
  opts.frontend.catalog = catalog;
  auto cluster = MiniCluster::create(opts, *cat);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();

  auto before = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(before.isOk()) << before.status().toString();

  // Kill one data server; every chunk still has a live replica.
  (*cluster)->server(0).setUp(false);
  auto after = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(after.isOk()) << after.status().toString();
  EXPECT_EQ(before->result->cell(0, 0).asInt(),
            after->result->cell(0, 0).asInt());
}

TEST(IntegrationFailover, UnreplicatedClusterFailsWhenOwnerDies) {
  CatalogConfig catalog = CatalogConfig::lsst(18, 6, 0.05);
  SkyDataOptions data;
  data.basePatchObjects = 200;
  data.withSources = false;
  data.region = sphgeom::SphericalBox(0, -7, 10, 7);
  auto cat = buildSkyCatalog(catalog, data);
  ASSERT_TRUE(cat.isOk());

  ClusterOptions opts;
  opts.numWorkers = 3;
  opts.replication = 1;
  opts.frontend.catalog = catalog;
  auto cluster = MiniCluster::create(opts, *cat);
  ASSERT_TRUE(cluster.isOk());

  (*cluster)->server(1).setUp(false);
  auto r = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
  EXPECT_FALSE(r.isOk());
}

}  // namespace
}  // namespace qserv::core
