/// \file fault_sweep_test.cc
/// \brief Seeded randomized fault sweep (the robustness acceptance bar):
/// with a few percent of all xrd transactions failing or corrupting, every
/// query must either return the fault-free answer or fail with a clean,
/// aggregated error — never hang, never merge corrupt data, never spin on
/// the same dead replica. The plan seed pins the whole schedule, so a
/// failure here replays exactly.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "qserv/cluster.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace qserv::core {
namespace {

TEST(FaultSweep, EveryQueryCorrectOrCleanlyErrored) {
  CatalogConfig catalog = CatalogConfig::lsst(18, 6, 0.05);
  SkyDataOptions skyOpts;
  skyOpts.basePatchObjects = 400;
  skyOpts.withSources = false;
  skyOpts.region = sphgeom::SphericalBox(0, -7, 14, 7);
  auto sky = buildSkyCatalog(catalog, skyOpts);
  ASSERT_TRUE(sky.isOk()) << sky.status().toString();

  const std::vector<std::string> queries = {
      "SELECT COUNT(*) FROM Object",
      "SELECT COUNT(*), AVG(ra_PS) FROM Object WHERE decl_PS > 0",
      "SELECT MIN(objectId), MAX(objectId) FROM Object",
  };

  // Fault-free oracle answers.
  std::vector<sql::TablePtr> oracle;
  {
    ClusterOptions clean;
    clean.frontend.catalog = catalog;
    clean.numWorkers = 3;
    auto cluster = MiniCluster::create(clean, *sky);
    ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
    for (const auto& q : queries) {
      auto r = (*cluster)->frontend().query(q);
      ASSERT_TRUE(r.isOk()) << q << ": " << r.status().toString();
      oracle.push_back(r->result);
    }
  }

  // Faulty cluster: every worker misbehaves on a few percent of
  // transactions — enough injected faults that nearly every query sees one.
  ClusterOptions opts;
  opts.frontend.catalog = catalog;
  opts.numWorkers = 3;
  opts.replication = 2;
  opts.frontend.dispatchMaxAttempts = 6;
  opts.frontend.dispatchBackoff.base = std::chrono::microseconds(500);
  opts.frontend.dispatchBackoff.cap = std::chrono::microseconds(5'000);
  opts.frontend.queryDeadlineSeconds = 30.0;  // hang backstop, not the norm
  auto plan = xrd::FaultPlan::parse(
      "seed=20260806; write:p=0.04,fail; read:p=0.02,fail=internal; "
      "read:p=0.02,corrupt; read:p=0.01,corrupt=truncate");
  ASSERT_TRUE(plan.isOk()) << plan.status().toString();
  opts.faults = *plan;
  auto cluster = MiniCluster::create(opts, *sky);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();

  auto before = util::MetricsRegistry::instance().snapshot();
  int okCount = 0, errCount = 0;
  constexpr int kRounds = 12;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      util::Stopwatch watch;
      auto r = (*cluster)->frontend().query(queries[qi]);
      // Never a hang: transient faults resolve in milliseconds of backoff.
      EXPECT_LT(watch.elapsedSeconds(), 30.0) << queries[qi];
      if (!r.isOk()) {
        ++errCount;
        // A clean error: a real failure code and an aggregated message
        // naming the chunk(s), not an internal invariant blowing up.
        auto code = r.status().code();
        EXPECT_TRUE(code == util::ErrorCode::kUnavailable ||
                    code == util::ErrorCode::kDataLoss ||
                    code == util::ErrorCode::kInternal ||
                    code == util::ErrorCode::kDeadlineExceeded)
            << r.status().toString();
        EXPECT_NE(r.status().message().find("chunk"), std::string::npos)
            << r.status().toString();
        continue;
      }
      ++okCount;
      // Silent-corruption check: a query that claims success must match the
      // fault-free oracle cell for cell.
      const auto& want = oracle[qi];
      ASSERT_EQ(r->result->numRows(), want->numRows()) << queries[qi];
      ASSERT_EQ(r->result->numColumns(), want->numColumns()) << queries[qi];
      for (std::size_t row = 0; row < want->numRows(); ++row) {
        for (std::size_t col = 0; col < want->numColumns(); ++col) {
          EXPECT_EQ(r->result->cell(row, col).compare(want->cell(row, col)),
                    0)
              << queries[qi] << " row " << row << " col " << col;
        }
      }
    }
  }
  auto after = util::MetricsRegistry::instance().snapshot();

  auto delta = [&](const char* name) -> std::uint64_t {
    auto b = before.counters.count(name) ? before.counters.at(name) : 0;
    auto a = after.counters.count(name) ? after.counters.at(name) : 0;
    return a - b;
  };
  // The sweep actually injected a meaningful fault load: at least 1% of all
  // xrd transactions misbehaved.
  std::uint64_t injected = delta("faultinj.write_faults") +
                           delta("faultinj.read_faults") +
                           delta("faultinj.corruptions");
  std::uint64_t transactions =
      delta("xrd.write_transactions") + delta("xrd.read_transactions");
  ASSERT_GT(transactions, 0u);
  EXPECT_GT(injected, 0u);
  EXPECT_GE(injected * 100, transactions) << "fault load below 1%";
  // With replication and retries, the cluster rode out most of the faults.
  EXPECT_GT(okCount, errCount);
  EXPECT_EQ(okCount + errCount, kRounds * static_cast<int>(queries.size()));
  // Corruption was caught at the checksum, and nothing corrupt was merged.
  EXPECT_GT(delta("dispatch.checksum_mismatches"), 0u);
  EXPECT_EQ(delta("merger.checksum_rejects"), 0u);
}

// Down/revive churn with the self-healing controller in charge: workers die
// and come back round after round (on top of a transient-fault background)
// while the monitor thread detects, quarantines, re-replicates, and
// re-admits. The invariant is unchanged: every query returns the fault-free
// answer or a clean aggregated error — and the controller must keep the
// cluster at full redundancy whenever the dust settles.
TEST(FaultSweep, DownReviveChurnWithControllerRunning) {
  CatalogConfig catalog = CatalogConfig::lsst(18, 6, 0.05);
  SkyDataOptions skyOpts;
  skyOpts.basePatchObjects = 400;
  skyOpts.withSources = false;
  skyOpts.region = sphgeom::SphericalBox(0, -7, 14, 7);
  auto sky = buildSkyCatalog(catalog, skyOpts);
  ASSERT_TRUE(sky.isOk()) << sky.status().toString();

  std::int64_t oracle = 0;
  {
    ClusterOptions clean;
    clean.frontend.catalog = catalog;
    clean.numWorkers = 3;
    auto cluster = MiniCluster::create(clean, *sky);
    ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
    auto r = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    oracle = r->result->cell(0, 0).asInt();
  }

  ClusterOptions opts;
  opts.frontend.catalog = catalog;
  opts.numWorkers = 3;
  opts.replication = 2;
  opts.frontend.dispatchMaxAttempts = 6;
  opts.frontend.dispatchBackoff.base = std::chrono::microseconds(500);
  opts.frontend.dispatchBackoff.cap = std::chrono::microseconds(5'000);
  opts.frontend.queryDeadlineSeconds = 30.0;
  opts.repair.probeInterval = std::chrono::milliseconds(5);
  opts.repair.copyBackoff.base = std::chrono::microseconds(500);
  opts.repair.copyBackoff.cap = std::chrono::microseconds(5'000);
  auto plan = xrd::FaultPlan::parse("seed=20260808; write:p=0.02,fail");
  ASSERT_TRUE(plan.isOk()) << plan.status().toString();
  opts.faults = *plan;
  auto cluster = MiniCluster::create(opts, *sky);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
  auto& repair = (*cluster)->repairController();
  repair.start();

  int okCount = 0, errCount = 0;
  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    // Kill a rotating victim, query through the outage, then revive it.
    std::size_t victim = static_cast<std::size_t>(round) % 3;
    (*cluster)->server(victim).setUp(false);
    for (int q = 0; q < 3; ++q) {
      util::Stopwatch watch;
      auto r = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
      EXPECT_LT(watch.elapsedSeconds(), 30.0);
      if (!r.isOk()) {
        ++errCount;
        auto code = r.status().code();
        EXPECT_TRUE(code == util::ErrorCode::kUnavailable ||
                    code == util::ErrorCode::kDataLoss ||
                    code == util::ErrorCode::kInternal ||
                    code == util::ErrorCode::kDeadlineExceeded)
            << r.status().toString();
        continue;
      }
      ++okCount;
      EXPECT_EQ(r->result->cell(0, 0).asInt(), oracle);
    }
    (*cluster)->server(victim).setUp(true);
    // Let the monitor observe the revival before the next round claims a
    // different victim (two dead workers would drop chunks to 0 replicas).
    std::string id = util::format("w%zu", victim);
    util::Stopwatch watch;
    while (repair.health(id) != RepairController::WorkerHealth::kUp &&
           watch.elapsedSeconds() < 10.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(repair.health(id), RepairController::WorkerHealth::kUp);
  }

  // Give auto-repair a bounded window to finish any in-flight healing.
  util::Stopwatch settle;
  while (!repair.underReplicatedChunks().empty() &&
         settle.elapsedSeconds() < 20.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  repair.stop();
  EXPECT_TRUE(repair.underReplicatedChunks().empty()) << repair.statusText();
  EXPECT_GT(okCount, errCount);
  EXPECT_EQ(okCount + errCount, kRounds * 3);

  auto r = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(r->result->cell(0, 0).asInt(), oracle);
}

}  // namespace
}  // namespace qserv::core
