#include "qserv/query_analysis.h"

#include <gtest/gtest.h>

namespace qserv::core {
namespace {

CatalogConfig cfg() { return CatalogConfig::lsst(18, 6); }

AnalyzedQuery analyze(std::string_view sql) {
  auto r = analyzeQuery(sql, cfg());
  EXPECT_TRUE(r.isOk()) << r.status().toString() << " for: " << sql;
  return std::move(r).value();
}

TEST(Analysis, PlainFullSkyQuery) {
  auto a = analyze("SELECT COUNT(*) FROM Object");
  EXPECT_FALSE(a.areaRestriction.has_value());
  EXPECT_TRUE(a.restrictedObjectIds.empty());
  EXPECT_FALSE(a.isNearNeighbor);
  EXPECT_TRUE(a.hasAggregates);
  EXPECT_TRUE(a.touchesPartitioned());
}

TEST(Analysis, AreaspecExtracted) {
  auto a = analyze(
      "SELECT AVG(uFlux_SG) FROM Object "
      "WHERE qserv_areaspec_box(0.0, 0.0, 10.0, 10.0) AND uRadius_PS > 0.04");
  ASSERT_TRUE(a.areaRestriction.has_value());
  EXPECT_DOUBLE_EQ(a.areaRestriction->lonMin(), 0.0);
  EXPECT_DOUBLE_EQ(a.areaRestriction->latMax(), 10.0);
  // The areaspec conjunct is removed; the ordinary predicate stays.
  ASSERT_TRUE(a.stmt.where != nullptr);
  EXPECT_EQ(a.stmt.where->toSql().find("areaspec"), std::string::npos);
  EXPECT_NE(a.stmt.where->toSql().find("uRadius_PS"), std::string::npos);
}

TEST(Analysis, AreaspecOnlyWhereBecomesEmpty) {
  auto a = analyze("SELECT COUNT(*) FROM Object "
                   "WHERE qserv_areaspec_box(-5, -5, 5, 5)");
  ASSERT_TRUE(a.areaRestriction.has_value());
  EXPECT_TRUE(a.stmt.where == nullptr);
}

TEST(Analysis, NegativeAreaspecBounds) {
  auto a = analyze("SELECT COUNT(*) FROM Object o1, Object o2 "
                   "WHERE qserv_areaspec_box(-5, -5, 5, 5) AND "
                   "qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) "
                   "< 0.1");
  ASSERT_TRUE(a.areaRestriction.has_value());
  EXPECT_DOUBLE_EQ(a.areaRestriction->lonMin(), 355.0);  // normalized
  EXPECT_DOUBLE_EQ(a.areaRestriction->latMin(), -5.0);
  EXPECT_TRUE(a.isNearNeighbor);
}

TEST(Analysis, ObjectIdEquality) {
  auto a = analyze("SELECT * FROM Object WHERE objectId = 31415");
  ASSERT_EQ(a.restrictedObjectIds.size(), 1u);
  EXPECT_EQ(a.restrictedObjectIds[0], 31415);
  // The conjunct stays in the WHERE for worker-side execution.
  EXPECT_NE(a.stmt.where->toSql().find("objectId"), std::string::npos);
}

TEST(Analysis, ObjectIdInList) {
  auto a = analyze("SELECT * FROM Source WHERE objectId IN (3, 1, 2, 3)");
  ASSERT_EQ(a.restrictedObjectIds.size(), 3u);  // deduplicated, sorted
  EXPECT_EQ(a.restrictedObjectIds[0], 1);
  EXPECT_EQ(a.restrictedObjectIds[2], 3);
}

TEST(Analysis, QualifiedObjectIdRespectsAlias) {
  auto a = analyze("SELECT o.objectId FROM Object o, Source s "
                   "WHERE o.objectId = s.objectId AND s.objectId = 7");
  ASSERT_EQ(a.restrictedObjectIds.size(), 1u);
  EXPECT_EQ(a.restrictedObjectIds[0], 7);
}

TEST(Analysis, NonIdColumnIsNotIndexOpportunity) {
  auto a = analyze("SELECT * FROM Object WHERE chunkId = 5");
  EXPECT_TRUE(a.restrictedObjectIds.empty());
}

TEST(Analysis, ObjectIdComparedToColumnIsNotPinned) {
  auto a = analyze("SELECT COUNT(*) FROM Object o, Source s "
                   "WHERE o.objectId = s.objectId");
  EXPECT_TRUE(a.restrictedObjectIds.empty());
}

TEST(Analysis, NearNeighborDetection) {
  auto a = analyze(
      "SELECT count(*) FROM Object o1, Object o2 "
      "WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1");
  EXPECT_TRUE(a.isNearNeighbor);
}

TEST(Analysis, ObjectSourceJoinIsNotNearNeighbor) {
  auto a = analyze("SELECT o.objectId FROM Object o, Source s "
                   "WHERE o.objectId = s.objectId");
  EXPECT_FALSE(a.isNearNeighbor);
  EXPECT_EQ(a.from.size(), 2u);
  EXPECT_NE(a.from[0].partitioned, nullptr);
  EXPECT_NE(a.from[1].partitioned, nullptr);
}

TEST(Analysis, SelfJoinWithoutOverlapRejected) {
  // Source carries no overlap data; a Source self-join cannot run.
  auto r = analyzeQuery(
      "SELECT count(*) FROM Source s1, Source s2 "
      "WHERE qserv_angSep(s1.ra, s1.decl, s2.ra, s2.decl) < 0.01",
      cfg());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kUnimplemented);
}

TEST(Analysis, NonPartitionedQuery) {
  auto a = analyze("SELECT 1 + 1");
  EXPECT_FALSE(a.touchesPartitioned());
}

TEST(Analysis, AreaspecInsideOrRejected) {
  auto r = analyzeQuery(
      "SELECT COUNT(*) FROM Object "
      "WHERE qserv_areaspec_box(0,0,1,1) OR ra_PS > 100",
      cfg());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kUnimplemented);
}

TEST(Analysis, MultipleAreaspecsRejected) {
  auto r = analyzeQuery(
      "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(0,0,1,1) AND "
      "qserv_areaspec_box(2,2,3,3)",
      cfg());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kUnimplemented);
}

TEST(Analysis, NonLiteralAreaspecRejected) {
  auto r = analyzeQuery(
      "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(ra_PS, 0, 1, 1)",
      cfg());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(Analysis, AggregateInWhereRejected) {
  auto r = analyzeQuery("SELECT 1 FROM Object WHERE SUM(ra_PS) > 3", cfg());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(Analysis, ImplicitRestrictionFromBetweenOnPartitionColumns) {
  // The paper's LV3 shape: BETWEEN predicates on ra_PS/decl_PS must prune
  // the chunk cover even without qserv_areaspec_box.
  auto a = analyze("SELECT COUNT(*) FROM Object WHERE ra_PS BETWEEN 1 AND 2 "
                   "AND decl_PS BETWEEN 3 AND 4");
  ASSERT_TRUE(a.areaRestriction.has_value());
  EXPECT_TRUE(a.areaRestrictionIsImplicit);
  EXPECT_DOUBLE_EQ(a.areaRestriction->lonMin(), 1.0);
  EXPECT_DOUBLE_EQ(a.areaRestriction->lonMax(), 2.0);
  EXPECT_DOUBLE_EQ(a.areaRestriction->latMin(), 3.0);
  EXPECT_DOUBLE_EQ(a.areaRestriction->latMax(), 4.0);
  // Predicates stay in the WHERE (pruning is coarse).
  EXPECT_NE(a.stmt.where->toSql().find("ra_PS"), std::string::npos);
}

TEST(Analysis, ImplicitRestrictionDecOnly) {
  auto a = analyze("SELECT COUNT(*) FROM Object WHERE decl_PS BETWEEN -5 AND 5");
  ASSERT_TRUE(a.areaRestriction.has_value());
  EXPECT_TRUE(a.areaRestriction->isFullLon());
  EXPECT_DOUBLE_EQ(a.areaRestriction->latMin(), -5.0);
}

TEST(Analysis, NoImplicitRestrictionFromNonPartitionColumns) {
  auto a = analyze("SELECT COUNT(*) FROM Object WHERE uRadius_PS BETWEEN 0 AND 1");
  EXPECT_FALSE(a.areaRestriction.has_value());
}

TEST(Analysis, ExplicitAreaspecWinsOverImplicit) {
  auto a = analyze("SELECT COUNT(*) FROM Object WHERE "
                   "qserv_areaspec_box(10, 10, 20, 20) AND "
                   "ra_PS BETWEEN 12 AND 13");
  ASSERT_TRUE(a.areaRestriction.has_value());
  EXPECT_FALSE(a.areaRestrictionIsImplicit);
  EXPECT_DOUBLE_EQ(a.areaRestriction->lonMin(), 10.0);
}

TEST(Analysis, NegatedBetweenDoesNotRestrict) {
  auto a = analyze(
      "SELECT COUNT(*) FROM Object WHERE ra_PS NOT BETWEEN 1 AND 2");
  EXPECT_FALSE(a.areaRestriction.has_value());
}

TEST(Analysis, AggregateDetectionInsideExpressions) {
  auto a = analyze("SELECT SUM(uFlux_PS) / COUNT(uFlux_PS) FROM Object");
  EXPECT_TRUE(a.hasAggregates);
  auto b = analyze("SELECT fluxToAbMag(uFlux_PS) FROM Object");
  EXPECT_FALSE(b.hasAggregates);
}

}  // namespace
}  // namespace qserv::core
