/// \file batch_dispatch_test.cc
/// \brief Batched per-worker dispatch (§7.6 remedy): wire-codec roundtrips,
/// batch accounting and observability, and a seeded randomized parity sweep
/// asserting that batched dispatch + binary transfer returns results
/// identical to the paper's per-chunk dispatch + SQL-dump transfer across
/// LV / HV / SHV query shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "qserv/batch_codec.h"
#include "qserv/cluster.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/strings.h"

namespace qserv::core {
namespace {

// --------------------------------------------------------------- wire codec

TEST(BatchCodec, RequestRoundTrip) {
  std::vector<BatchChunkRequest> chunks;
  chunks.push_back({101, "SELECT * FROM Object_101;\n-- trailer"});
  // A payload that embeds NUL bytes, newlines, and text that looks like the
  // framing itself; byte counts, not delimiters, must drive the decoder.
  chunks.push_back({202, std::string("binary\0payload\n--#CHUNK fake", 28)});
  chunks.push_back({303, ""});
  std::string wire = encodeBatchRequest(chunks, 8);

  auto decoded = decodeBatchRequest(wire);
  ASSERT_TRUE(decoded.isOk()) << decoded.status().toString();
  EXPECT_EQ(decoded->streamWindow, 8);
  ASSERT_EQ(decoded->chunks.size(), chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(decoded->chunks[i].chunkId, chunks[i].chunkId);
    EXPECT_EQ(decoded->chunks[i].payload, chunks[i].payload);
  }
}

TEST(BatchCodec, RequestRejectsDamage) {
  std::string wire =
      encodeBatchRequest({{7, "payload-a"}, {9, "payload-b"}}, 4);
  // Truncation, trailing garbage, and a non-batch header are all framing
  // violations, not "best effort" parses.
  for (const std::string& bad :
       {wire.substr(0, wire.size() - 1), wire + "x",
        std::string("-- QSERV-DUMP 2 4\n"), std::string()}) {
    auto r = decodeBatchRequest(bad);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidArgument)
        << r.status().toString();
  }
}

TEST(BatchCodec, ResultFrameRoundTrip) {
  std::string body("dump\0with\nbinary bytes --#FRAME 1 ok 0\n", 39);
  std::string frame = encodeResultFrame(42, body);
  auto decoded = decodeResultFrame(frame);
  ASSERT_TRUE(decoded.isOk()) << decoded.status().toString();
  EXPECT_EQ(decoded->chunkId, 42);
  EXPECT_TRUE(decoded->status.isOk());
  EXPECT_EQ(decoded->body, body);
}

TEST(BatchCodec, ErrorFrameCarriesWorkerStatus) {
  std::string frame =
      encodeErrorFrame(7, util::Status::unavailable("worker going down"));
  auto decoded = decodeResultFrame(frame);
  ASSERT_TRUE(decoded.isOk()) << decoded.status().toString();
  EXPECT_EQ(decoded->chunkId, 7);
  EXPECT_EQ(decoded->status.code(), util::ErrorCode::kUnavailable);
  EXPECT_NE(decoded->status.message().find("worker going down"),
            std::string::npos);
}

TEST(BatchCodec, DamagedFrameIsDataLoss) {
  std::string frame = encodeResultFrame(5, "the result body");
  std::string scrambledHeader = frame;
  scrambledHeader[4] = 'X';  // inside "--#FRAME"
  for (const std::string& bad :
       {scrambledHeader, frame.substr(0, frame.size() - 3), std::string()}) {
    auto r = decodeResultFrame(bad);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), util::ErrorCode::kDataLoss)
        << r.status().toString();
  }
}

// ---------------------------------------------------------- cluster fixture

class BatchDispatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new CatalogConfig(CatalogConfig::lsst(18, 6, 0.05));
    SkyDataOptions data;
    data.basePatchObjects = 700;
    data.withSources = false;
    data.region = sphgeom::SphericalBox(0, -7, 30, 7);
    auto sky = buildSkyCatalog(*catalog_, data);
    ASSERT_TRUE(sky.isOk()) << sky.status().toString();
    catalogData_ = new datagen::PartitionedCatalog(std::move(sky).value());
  }

  static void TearDownTestSuite() {
    delete catalogData_;
    catalogData_ = nullptr;
    delete catalog_;
    catalog_ = nullptr;
  }

  static std::unique_ptr<MiniCluster> makeCluster(DispatchMode mode,
                                                  TransferFormat transfer) {
    ClusterOptions opts;
    opts.numWorkers = 3;
    opts.frontend.catalog = *catalog_;
    opts.frontend.dispatchMode = mode;
    opts.worker.transfer = transfer;
    auto cluster = MiniCluster::create(opts, *catalogData_);
    EXPECT_TRUE(cluster.isOk()) << cluster.status().toString();
    return cluster.isOk() ? std::move(*cluster) : nullptr;
  }

  static QservFrontend::Execution query(MiniCluster& cluster,
                                        const std::string& sql) {
    auto r = cluster.frontend().query(sql);
    EXPECT_TRUE(r.isOk()) << r.status().toString() << " for: " << sql;
    return r.isOk() ? std::move(r).value() : QservFrontend::Execution{};
  }

  /// All rows of \p table, sorted cell-lexicographically so that parity
  /// holds regardless of merge arrival order (pipelined merging consumes
  /// chunks as they stream in; per-chunk mode merged in spec order).
  static std::vector<std::vector<sql::Value>> sortedRows(
      const sql::TablePtr& table) {
    std::vector<std::vector<sql::Value>> rows;
    rows.reserve(table->numRows());
    for (std::size_t r = 0; r < table->numRows(); ++r) {
      std::vector<sql::Value> row;
      row.reserve(table->numColumns());
      for (std::size_t c = 0; c < table->numColumns(); ++c) {
        row.push_back(table->cell(r, c));
      }
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const std::vector<sql::Value>& a,
                 const std::vector<sql::Value>& b) {
                for (std::size_t i = 0; i < a.size(); ++i) {
                  int cmp = a[i].compare(b[i]);
                  if (cmp != 0) return cmp < 0;
                }
                return false;
              });
    return rows;
  }

  static CatalogConfig* catalog_;
  static datagen::PartitionedCatalog* catalogData_;
};

CatalogConfig* BatchDispatchTest::catalog_ = nullptr;
datagen::PartitionedCatalog* BatchDispatchTest::catalogData_ = nullptr;

// ----------------------------------------------------------- batched basics

TEST_F(BatchDispatchTest, OneBatchPerWorkerNotPerChunk) {
  auto cluster = makeCluster(DispatchMode::kBatched, TransferFormat::kSqlDump);
  ASSERT_TRUE(cluster);
  auto before = util::MetricsRegistry::instance().snapshot();
  auto exec = query(*cluster, "SELECT COUNT(*) FROM Object");
  auto after = util::MetricsRegistry::instance().snapshot();
  auto delta = [&](const char* name) -> std::uint64_t {
    auto b = before.counters.count(name) ? before.counters.at(name) : 0;
    auto a = after.counters.count(name) ? after.counters.at(name) : 0;
    return a - b;
  };

  ASSERT_TRUE(exec.result);
  EXPECT_EQ(exec.dispatchMode, DispatchMode::kBatched);
  // A full-sky query on 3 workers needs exactly 3 batch requests, not one
  // write per chunk — that is the whole point of the remedy.
  EXPECT_EQ(exec.dispatchBatches, cluster->numWorkers());
  EXPECT_GT(exec.chunksDispatched, cluster->numWorkers());
  EXPECT_EQ(delta("dispatch.batches"), exec.dispatchBatches);
  EXPECT_EQ(delta("xrd.batch_writes"), exec.dispatchBatches);
  EXPECT_EQ(delta("xrd.write_transactions"), exec.dispatchBatches);
  // Every chunk's result arrived as a stream frame, none via fallback.
  EXPECT_GE(delta("xrd.stream_reads"), exec.chunksDispatched);
  EXPECT_EQ(delta("dispatch.batch_fallback_chunks"), 0u);
  EXPECT_EQ(delta("dispatch.batch_chunk_retries"), 0u);
}

TEST_F(BatchDispatchTest, ExplainReportsDispatchStrategy) {
  auto batched = makeCluster(DispatchMode::kBatched, TransferFormat::kSqlDump);
  auto perChunk =
      makeCluster(DispatchMode::kPerChunk, TransferFormat::kSqlDump);
  ASSERT_TRUE(batched && perChunk);
  auto dispatchRow = [&](MiniCluster& cluster) -> std::string {
    auto exec = query(cluster, "EXPLAIN SELECT COUNT(*) FROM Object");
    if (!exec.result) return {};
    for (std::size_t r = 0; r < exec.result->numRows(); ++r) {
      if (exec.result->cell(r, 0).asString() == "dispatch") {
        return exec.result->cell(r, 1).asString();
      }
    }
    return {};
  };
  std::string batchedDesc = dispatchRow(*batched);
  EXPECT_NE(batchedDesc.find("batched"), std::string::npos) << batchedDesc;
  EXPECT_NE(batchedDesc.find("per-worker batches"), std::string::npos)
      << batchedDesc;
  std::string perChunkDesc = dispatchRow(*perChunk);
  EXPECT_NE(perChunkDesc.find("per-chunk"), std::string::npos) << perChunkDesc;
}

TEST_F(BatchDispatchTest, ProfileRecordsBatchTransferDistribution) {
  auto cluster = makeCluster(DispatchMode::kBatched, TransferFormat::kSqlDump);
  ASSERT_TRUE(cluster);
  auto exec = query(*cluster, "SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(exec.result);
  auto profile = cluster->frontend().profileFor(exec.queryId);
  ASSERT_TRUE(profile);
  EXPECT_EQ(profile->batches,
            static_cast<std::int64_t>(exec.dispatchBatches));
  EXPECT_EQ(profile->batchTransfer.count, profile->batches);
  EXPECT_GT(profile->batchTransfer.sum, 0.0);
  EXPECT_EQ(profile->chunks,
            static_cast<std::int64_t>(exec.chunksDispatched));
  EXPECT_EQ(profile->retries, 0);
}

// ------------------------------------------------------------- parity sweep

TEST_F(BatchDispatchTest, RandomizedParityBatchedBinaryVsPerChunkDump) {
  // Paper mode: per-chunk dispatch, mysqldump-style transfer. New fast
  // path: one batch per worker, binary row codec, pipelined merge. Both
  // run the same seeded query mix over the same sky; results must be
  // identical cell for cell.
  auto paper = makeCluster(DispatchMode::kPerChunk, TransferFormat::kSqlDump);
  auto fast = makeCluster(DispatchMode::kBatched, TransferFormat::kBinary);
  ASSERT_TRUE(paper && fast);

  util::Rng rng(0xBA7C4ED15);
  std::vector<std::string> queries;
  // LV: secondary-index object retrievals at random ids.
  const auto& index = catalogData_->index;
  ASSERT_FALSE(index.empty());
  for (int i = 0; i < 4; ++i) {
    std::int64_t id = index[rng.below(index.size())].objectId;
    queries.push_back("SELECT * FROM Object WHERE objectId = " +
                      std::to_string(id));
  }
  // HV: full-sky aggregates and a randomized row-heavy declination band.
  queries.push_back("SELECT COUNT(*) FROM Object");
  queries.push_back(
      "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId FROM Object "
      "GROUP BY chunkId ORDER BY chunkId");
  for (int i = 0; i < 2; ++i) {
    int lo = -6 + static_cast<int>(rng.below(10));
    queries.push_back(util::format(
        "SELECT objectId, ra_PS, decl_PS, rFlux_PS FROM Object "
        "WHERE decl_PS BETWEEN %d AND %d",
        lo, lo + 2));
  }
  // SHV: near-neighbor self-joins over randomized small boxes (0.03 deg is
  // under the 0.05 deg overlap margin, so chunked counts are exact).
  for (int i = 0; i < 2; ++i) {
    int ra = static_cast<int>(rng.below(20));
    queries.push_back(util::format(
        "SELECT count(*) FROM Object o1, Object o2 WHERE "
        "qserv_areaspec_box(%d, -2, %d, 1) AND "
        "qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.03",
        ra, ra + 3));
  }

  for (const auto& sql : queries) {
    auto want = query(*paper, sql);
    auto got = query(*fast, sql);
    ASSERT_TRUE(want.result && got.result) << sql;
    EXPECT_EQ(want.dispatchMode, DispatchMode::kPerChunk);
    EXPECT_EQ(got.dispatchMode, DispatchMode::kBatched);
    EXPECT_EQ(got.chunksDispatched, want.chunksDispatched) << sql;
    ASSERT_EQ(got.result->numColumns(), want.result->numColumns()) << sql;
    ASSERT_EQ(got.result->numRows(), want.result->numRows()) << sql;
    auto wantRows = sortedRows(want.result);
    auto gotRows = sortedRows(got.result);
    for (std::size_t r = 0; r < wantRows.size(); ++r) {
      for (std::size_t c = 0; c < wantRows[r].size(); ++c) {
        ASSERT_EQ(gotRows[r][c].compare(wantRows[r][c]), 0)
            << sql << " row " << r << " col " << c;
      }
    }
  }
}

}  // namespace
}  // namespace qserv::core
