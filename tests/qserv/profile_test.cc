/// Query-level profiling: EXPLAIN / EXPLAIN ANALYZE plans, per-stage
/// resource accounting, QueryStats history, slow-query log, and the
/// per-worker queue instruments (see DESIGN.md "Observability").
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "qserv/cluster.h"
#include "qserv/query_profile.h"
#include "qserv/secondary_index.h"
#include "util/metrics.h"

namespace qserv::core {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogConfig catalog = CatalogConfig::lsst(18, 6, 0.05);
    SkyDataOptions data;
    data.basePatchObjects = 500;
    data.withSources = true;
    data.region = sphgeom::SphericalBox(0, -7, 14, 7);
    auto sky = buildSkyCatalog(catalog, data);
    ASSERT_TRUE(sky.isOk());
    sky_ = new datagen::PartitionedCatalog(std::move(*sky));
    ClusterOptions opts;
    opts.numWorkers = 2;
    opts.frontend.catalog = catalog;
    auto cluster = MiniCluster::create(opts, *sky_);
    ASSERT_TRUE(cluster.isOk());
    cluster_ = cluster->release();
  }
  static void TearDownTestSuite() {
    delete cluster_;
    cluster_ = nullptr;
    delete sky_;
    sky_ = nullptr;
  }

  QservFrontend& frontend() { return cluster_->frontend(); }

  /// An objectId that exists in the loaded data (first secondary-index row).
  std::int64_t someObjectId() {
    auto table = frontend().metadata().findTable(SecondaryIndex::kTableName);
    EXPECT_TRUE(table && table->numRows() > 0);
    return table->intColumn(0)[0];
  }

  /// Value of \p property in a 2-column EXPLAIN plan table, or "".
  static std::string planValue(const sql::Table& plan,
                               const std::string& property) {
    for (std::size_t r = 0; r < plan.numRows(); ++r) {
      if (plan.stringColumn(0)[r] == property) return plan.stringColumn(1)[r];
    }
    return {};
  }

  static MiniCluster* cluster_;
  static datagen::PartitionedCatalog* sky_;
};

MiniCluster* ProfileTest::cluster_ = nullptr;
datagen::PartitionedCatalog* ProfileTest::sky_ = nullptr;

TEST_F(ProfileTest, ExplainLvUsesSecondaryIndex) {
  auto r = frontend().query("EXPLAIN SELECT * FROM Object WHERE objectId = " +
                            std::to_string(someObjectId()));
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  // EXPLAIN never executes: no chunks dispatched, no trace.
  EXPECT_EQ(r->chunksDispatched, 0u);
  EXPECT_EQ(planValue(*r->result, "pruning").rfind("secondary-index", 0), 0u)
      << planValue(*r->result, "pruning");
  EXPECT_NE(planValue(*r->result, "chunk template"), "");
}

TEST_F(ProfileTest, ExplainHvIsFullSky) {
  auto r = frontend().query(
      "EXPLAIN SELECT COUNT(*) FROM Object WHERE iFlux_PS > 0");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(planValue(*r->result, "pruning").rfind("full sky", 0), 0u)
      << planValue(*r->result, "pruning");
  EXPECT_EQ(planValue(*r->result, "filter").rfind("vectorized", 0), 0u)
      << planValue(*r->result, "filter");
}

TEST_F(ProfileTest, ExplainShvSelectsZoneJoin) {
  auto r = frontend().query(
      "EXPLAIN SELECT COUNT(*) FROM Object o1, Object o2 WHERE "
      "qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.01");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(planValue(*r->result, "join strategy").rfind("zone", 0), 0u)
      << planValue(*r->result, "join strategy");
}

TEST_F(ProfileTest, ExplainSpatialRestrictionUsesSpatialCover) {
  auto r = frontend().query(
      "EXPLAIN SELECT COUNT(*) FROM Object WHERE "
      "qserv_areaspec_box(1, -2, 3, 2)");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(planValue(*r->result, "pruning").rfind("spatial cover", 0), 0u)
      << planValue(*r->result, "pruning");
}

TEST_F(ProfileTest, ExplainAnalyzeStageSumNearWall) {
  const std::string queries[] = {
      // LV: index-pruned point lookup.
      "SELECT * FROM Object WHERE objectId = " + std::to_string(someObjectId()),
      // HV: full-sky scan.
      "SELECT COUNT(*) FROM Object WHERE iFlux_PS > 0",
      // SHV: near-neighbor zone join.
      "SELECT COUNT(*) FROM Object o1, Object o2 WHERE "
      "qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.01",
  };
  for (const std::string& q : queries) {
    (void)frontend().query(q);  // warm caches so timings are representative
    auto r = frontend().query("EXPLAIN ANALYZE " + q);
    ASSERT_TRUE(r.isOk()) << r.status().toString() << "\n  for: " << q;
    ASSERT_TRUE(r->profile) << q;
    const QueryProfile& p = *r->profile;
    EXPECT_GT(p.wallSeconds, 0.0);
    EXPECT_FALSE(p.stages.empty());
    // The per-stage czar breakdown must account for the query's wall time:
    // stage sum within 10% of wall (stages are sequential, so <= wall).
    EXPECT_LE(p.stageSeconds(), p.wallSeconds * 1.001) << q;
    EXPECT_GE(p.stageSeconds(), p.wallSeconds * 0.9) << q;
    // The breakdown table is the query result.
    ASSERT_TRUE(r->result);
    EXPECT_GT(r->result->numRows(), p.stages.size());
    EXPECT_GT(p.chunks, 0);
    EXPECT_GE(p.attempts, p.chunks);
    EXPECT_GT(p.queueWait.count, 0);
    EXPECT_GT(p.execute.count, 0);
  }
}

TEST_F(ProfileTest, QueryStatsRetainsSummariesQueryableViaSql) {
  auto exec = frontend().query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(exec.isOk());
  std::uint64_t id = exec->queryId;

  auto rows = frontend().query(
      "SELECT queryId, status, wallSeconds, chunks FROM QueryStats "
      "WHERE queryId = " + std::to_string(id));
  ASSERT_TRUE(rows.isOk()) << rows.status().toString();
  ASSERT_EQ(rows->result->numRows(), 1u);
  EXPECT_EQ(rows->result->intColumn(0)[0], static_cast<std::int64_t>(id));
  EXPECT_EQ(rows->result->stringColumn(1)[0], "ok");
  EXPECT_GT(rows->result->doubleColumn(2)[0], 0.0);
  EXPECT_GT(rows->result->intColumn(3)[0], 0);
}

TEST_F(ProfileTest, ProfileForReturnsRetainedProfile) {
  auto exec = frontend().query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(exec.isOk());
  auto p = frontend().profileFor(exec->queryId);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->queryId, exec->queryId);
  EXPECT_EQ(p.get(), exec->profile.get());
  EXPECT_FALSE(frontend().profileFor(0));
}

TEST_F(ProfileTest, FailedQueryRecordsFailureStatusAndProfile) {
  auto r = frontend().query(
      "SELECT noSuchColumn FROM Object WHERE iFlux_PS > 0");
  ASSERT_FALSE(r.isOk());

  bool found = false;
  for (const auto& q : frontend().processList()) {
    if (q.sql.find("noSuchColumn") == std::string::npos) continue;
    found = true;
    EXPECT_TRUE(q.finished);
    EXPECT_NE(q.failureStatus, "");
    EXPECT_EQ(q.state.rfind("failed", 0), 0u) << q.state;
  }
  EXPECT_TRUE(found);

  // The failed query still left a QueryStats row with its error status.
  auto rows = frontend().query(
      "SELECT status FROM QueryStats WHERE status != 'ok'");
  ASSERT_TRUE(rows.isOk());
  EXPECT_GT(rows->result->numRows(), 0u);
}

TEST_F(ProfileTest, WorkerQueueInstrumentsPopulate) {
  (void)frontend().query("SELECT COUNT(*) FROM Object");
  auto snap = util::MetricsRegistry::instance().snapshot();
  bool sawWait = false;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("worker.w", 0) == 0 &&
        name.find(".queue_wait_seconds") != std::string::npos && h.count > 0) {
      sawWait = true;
    }
  }
  EXPECT_TRUE(sawWait) << "no per-worker queue-wait samples recorded";
}

TEST_F(ProfileTest, ExplainRejectsNonSelectBody) {
  EXPECT_FALSE(frontend().query("EXPLAIN DROP TABLE Object").isOk());
  EXPECT_FALSE(frontend().query("EXPLAIN ANALYZE").isOk());
}

// Config-dependent behaviour runs on its own small cluster.
class ProfileConfigTest : public ProfileTest {};

TEST_F(ProfileConfigTest, HistoryBoundsAndSlowQueryLog) {
  ClusterOptions opts;
  opts.numWorkers = 1;
  opts.frontend.catalog = CatalogConfig::lsst(18, 6, 0.05);
  opts.frontend.processListHistory = 2;
  opts.frontend.profileHistory = 2;
  opts.frontend.slowQuerySeconds = 1e-9;  // everything is "slow"
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk());
  auto& f = (*cluster)->frontend();

  ::testing::internal::CaptureStderr();
  std::uint64_t firstId = 0;
  for (int i = 0; i < 5; ++i) {
    auto r = f.query("SELECT COUNT(*) FROM Object");
    ASSERT_TRUE(r.isOk());
    if (i == 0) firstId = r->queryId;
  }
  std::string log = ::testing::internal::GetCapturedStderr();

  // Every query crossed the 1ns threshold: structured slowquery lines.
  EXPECT_NE(log.find("slowquery"), std::string::npos);
  EXPECT_NE(log.find("\"wallSeconds\""), std::string::npos);

  // processList keeps the 5 finished queries bounded at 2.
  std::size_t finished = 0;
  for (const auto& q : f.processList()) {
    if (q.finished) ++finished;
  }
  EXPECT_EQ(finished, 2u);

  // Profile history evicted the oldest; QueryStats keeps all 5.
  EXPECT_FALSE(f.profileFor(firstId));
  auto rows = f.query("SELECT COUNT(*) FROM QueryStats");
  ASSERT_TRUE(rows.isOk());
  // 5 profiled queries + this COUNT itself may already be recorded after it
  // ran; the COUNT sees the 5 prior rows.
  EXPECT_EQ(rows->result->intColumn(0)[0], 5);
}

TEST_F(ProfileConfigTest, QueryStatsHistoryIsBounded) {
  ClusterOptions opts;
  opts.numWorkers = 1;
  opts.frontend.catalog = CatalogConfig::lsst(18, 6, 0.05);
  opts.frontend.queryStatsHistory = 3;
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk());
  auto& f = (*cluster)->frontend();

  std::uint64_t firstId = 0;
  for (int i = 0; i < 5; ++i) {
    auto r = f.query("SELECT COUNT(*) FROM Object");
    ASSERT_TRUE(r.isOk());
    if (i == 0) firstId = r->queryId;
  }

  // The oldest rows were evicted past the cap; the first query is gone.
  auto rows = f.query("SELECT queryId FROM QueryStats");
  ASSERT_TRUE(rows.isOk());
  EXPECT_EQ(rows->result->numRows(), 3u);
  for (std::size_t r = 0; r < rows->result->numRows(); ++r) {
    EXPECT_NE(rows->result->intColumn(0)[r],
              static_cast<std::int64_t>(firstId));
  }
}

// Finishing queries append QueryStats rows while other threads SELECT from
// the table and flip the profiling toggle: the snapshot-swap publication
// (Database::replaceTable) and the atomic toggle must keep this race-free
// (run under TSan via build-tsan).
TEST_F(ProfileConfigTest, ConcurrentProfilingAndQueryStatsReads) {
  ClusterOptions opts;
  opts.numWorkers = 2;
  opts.frontend.catalog = CatalogConfig::lsst(18, 6, 0.05);
  opts.frontend.queryStatsHistory = 8;
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk());
  auto& f = (*cluster)->frontend();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&f, &failures] {
      for (int i = 0; i < 4; ++i) {
        if (!f.query("SELECT COUNT(*) FROM Object").isOk()) ++failures;
        // Scans the whole QueryStats snapshot while other queries finish.
        if (!f.query("SELECT queryId, sql, wallSeconds FROM QueryStats "
                     "WHERE wallSeconds >= 0.0")
                 .isOk()) {
          ++failures;
        }
      }
    });
  }
  for (int i = 0; i < 64; ++i) {
    f.setProfilingEnabled(i % 2 == 0);
    std::this_thread::yield();
  }
  f.setProfilingEnabled(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // One guaranteed-profiled query so the final count is never zero even if
  // every threaded query happened to land in a toggled-off window.
  ASSERT_TRUE(f.query("SELECT COUNT(*) FROM Object").isOk());
  auto rows = f.query("SELECT COUNT(*) FROM QueryStats");
  ASSERT_TRUE(rows.isOk());
  EXPECT_LE(rows->result->intColumn(0)[0], 8);
  EXPECT_GT(rows->result->intColumn(0)[0], 0);
}

TEST_F(ProfileConfigTest, ProfilingDisabledSkipsBookkeeping) {
  ClusterOptions opts;
  opts.numWorkers = 1;
  opts.frontend.catalog = CatalogConfig::lsst(18, 6, 0.05);
  opts.frontend.enableProfiling = false;
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk());
  auto& f = (*cluster)->frontend();
  EXPECT_FALSE(f.profilingEnabled());

  auto r = f.query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(r.isOk());
  EXPECT_FALSE(r->profile);
  EXPECT_FALSE(f.profileFor(r->queryId));
  auto rows = f.query("SELECT COUNT(*) FROM QueryStats");
  ASSERT_TRUE(rows.isOk());
  EXPECT_EQ(rows->result->intColumn(0)[0], 0);

  // EXPLAIN ANALYZE still profiles on demand.
  auto analyzed = f.query("EXPLAIN ANALYZE SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(analyzed.isOk());
  EXPECT_TRUE(analyzed->profile);
}

}  // namespace
}  // namespace qserv::core
