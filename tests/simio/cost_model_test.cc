#include "simio/cost_model.h"

#include <gtest/gtest.h>

namespace qserv::simio {
namespace {

TEST(CostModel, PointLookupIsSubSecond) {
  // LV1 worker side: one index probe, a handful of rows, tiny result.
  WorkObservables w;
  w.indexLookups = 1;
  w.rowsExamined = 1;
  w.resultBytes = 2048;
  w.resultRows = 1;
  CostParams p = CostParams::paper150();
  EXPECT_LT(workerServiceSeconds(w, p), 0.5);
  EXPECT_LT(masterCollectSeconds(w, p), 0.1);
}

TEST(CostModel, FullChunkScanMatchesContendedBandwidth) {
  // One Object chunk at paper scale: 1.824e12 bytes / 8983 chunks.
  WorkObservables w;
  w.bytesScanned = 1.824e12 / 8983.0;
  w.rowsExamined = 1700000000ULL / 8983;
  CostParams p = CostParams::paper150();
  double s = workerServiceSeconds(w, p);
  // ~203 MB at 27/4 MB/s/stream ≈ 30 s (+ CPU).
  EXPECT_GT(s, 25.0);
  EXPECT_LT(s, 40.0);
}

TEST(CostModel, CacheFractionReducesDiskTime) {
  WorkObservables w;
  w.bytesScanned = 1e9;
  CostParams cold = CostParams::paper150();
  CostParams warm = cold;
  warm.cacheFraction = 0.9;
  EXPECT_GT(workerServiceSeconds(w, cold),
            5.0 * workerServiceSeconds(w, warm));
}

TEST(CostModel, SingleStreamUsesSequentialBandwidth) {
  WorkObservables w;
  w.bytesScanned = 76e6;  // one second at sequential rate
  CostParams p = CostParams::paper150();
  p.slotsPerNode = 1;
  double s = workerServiceSeconds(w, p);
  EXPECT_NEAR(s, 1.0 + p.seekSeconds, 0.05);
}

TEST(CostModel, PairEvaluationDominatesNearNeighbor) {
  // SHV1 anchor: ~260e6 pairs per chunk ≈ 650 s of CPU at 2.5 us/pair.
  WorkObservables w;
  w.pairsEvaluated = 260000000ULL;
  CostParams p = CostParams::paper150();
  double s = workerServiceSeconds(w, p);
  EXPECT_GT(s, 500.0);
  EXPECT_LT(s, 800.0);
}

TEST(CostModel, CollectScalesWithResultBytes) {
  WorkObservables small, big;
  small.resultBytes = 1e4;
  big.resultBytes = 1e8;
  CostParams p = CostParams::paper150();
  EXPECT_GT(masterCollectSeconds(big, p),
            100.0 * masterCollectSeconds(small, p));
}

TEST(CostModel, ZeroWorkIsZeroSeconds) {
  WorkObservables w;
  CostParams p = CostParams::paper150();
  EXPECT_DOUBLE_EQ(workerServiceSeconds(w, p), 0.0);
  EXPECT_DOUBLE_EQ(masterCollectSeconds(w, p), 0.0);
}

}  // namespace
}  // namespace qserv::simio
