#include "simio/queue_sim.h"

#include <gtest/gtest.h>

namespace qserv::simio {
namespace {

CostParams fastParams() {
  CostParams p;
  p.nodeCount = 4;
  p.slotsPerNode = 2;
  p.perQueryFixedOverheadSec = 1.0;
  p.masterPerChunkOverheadSec = 0.01;
  return p;
}

TEST(QueueSim, EmptyQueryPaysOnlyFixedOverhead) {
  auto r = simulateQuery({}, fastParams());
  EXPECT_NEAR(r.elapsedSec(), 1.0, 1e-9);
}

TEST(QueueSim, SingleTaskLatency) {
  SimChunkTask t{0, 5.0, 0.5};
  auto r = simulateQuery({t}, fastParams());
  // 0.5 pre + 0.01 dispatch + 5 service + 0.5 collect + 0.5 post.
  EXPECT_NEAR(r.elapsedSec(), 6.51, 1e-6);
}

TEST(QueueSim, SlotsAllowParallelismWithinWorker) {
  // Two tasks on one 2-slot worker run concurrently.
  std::vector<SimChunkTask> tasks = {{0, 10.0, 0.0}, {0, 10.0, 0.0}};
  auto r = simulateQuery(tasks, fastParams());
  EXPECT_LT(r.elapsedSec(), 12.0);
  // Three tasks need two rounds.
  tasks.push_back({0, 10.0, 0.0});
  auto r3 = simulateQuery(tasks, fastParams());
  EXPECT_GT(r3.elapsedSec(), 20.0);
}

TEST(QueueSim, TasksSpreadAcrossWorkersRunConcurrently) {
  std::vector<SimChunkTask> tasks;
  for (int w = 0; w < 4; ++w) tasks.push_back({w, 10.0, 0.0});
  auto r = simulateQuery(tasks, fastParams());
  EXPECT_LT(r.elapsedSec(), 12.5);
}

TEST(QueueSim, DispatchOverheadGrowsLinearlyWithChunkCount) {
  // HV1 shape: tiny service, many chunks => time ~ chunks * overhead.
  CostParams p = CostParams::paper150();
  auto mk = [&](int chunks) {
    std::vector<SimChunkTask> tasks;
    for (int i = 0; i < chunks; ++i) {
      tasks.push_back({i % p.nodeCount, 0.01, 0.0005});
    }
    return simulateQuery(tasks, p).elapsedSec();
  };
  double t3000 = mk(3000);
  double t9000 = mk(9000);
  double overhead3000 = t3000 - p.perQueryFixedOverheadSec;
  double overhead9000 = t9000 - p.perQueryFixedOverheadSec;
  EXPECT_NEAR(overhead9000 / overhead3000, 3.0, 0.5);
  // And the 8983-chunk full-sky count lands in the paper's 20-30 s band.
  double hv1 = mk(8983);
  EXPECT_GT(hv1, 20.0);
  EXPECT_LT(hv1, 40.0);
}

TEST(QueueSim, WeakScalingKeepsScanTimeFlat) {
  // Constant data per node: N nodes, 60 chunks each, 30 s per chunk.
  auto timeFor = [&](int nodes) {
    CostParams p = CostParams::paperNodes(nodes);
    std::vector<SimChunkTask> tasks;
    for (int w = 0; w < nodes; ++w) {
      for (int c = 0; c < 60; ++c) tasks.push_back({w, 30.0, 0.001});
    }
    return simulateQuery(tasks, p).elapsedSec();
  };
  double t40 = timeFor(40);
  double t150 = timeFor(150);
  // Worker time is flat; only dispatch overhead grows. Allow 15%.
  EXPECT_LT(t150 / t40, 1.15);
}

TEST(QueueSim, FifoConvoysShortQueriesBehindScans) {
  // Fig 14 mechanism: a short query behind a long scan task on the same
  // worker waits for a slot.
  CostParams p = fastParams();
  p.nodeCount = 1;
  p.slotsPerNode = 1;
  SimQuery scan;
  scan.submitSec = 0.0;
  scan.tasks = {{0, 100.0, 0.0}};
  SimQuery point;
  point.submitSec = 1.0;
  point.tasks = {{0, 0.1, 0.0}};
  auto rs = simulateQueries({scan, point}, p);
  // The point query cannot finish before the scan's task releases the slot.
  EXPECT_GT(rs[1].completionSec, 100.0);
  // pre 0.5 + dispatch 0.01 + service 100 + post 0.5.
  EXPECT_NEAR(rs[0].elapsedSec(), 101.01, 0.1);
}

TEST(QueueSim, TwoConcurrentScansDoubleElapsedTime) {
  // Fig 14: two HV2-like scans take ~2x their solo time.
  CostParams p = CostParams::paper150();
  // Dispatch in chunkId order: consecutive chunks live on different workers
  // (round-robin placement), so two concurrent full scans interleave in
  // every worker's FIFO queue.
  auto mkQuery = [&](double submit) {
    SimQuery q;
    q.submitSec = submit;
    for (int c = 0; c < 15; ++c) {
      for (int w = 0; w < p.nodeCount; ++w) q.tasks.push_back({w, 10.0, 0.001});
    }
    return q;
  };
  double solo = simulateQueries({mkQuery(0)}, p)[0].elapsedSec();
  auto both = simulateQueries({mkQuery(0), mkQuery(0.1)}, p);
  EXPECT_NEAR(both[0].elapsedSec() / solo, 2.0, 0.35);
  EXPECT_NEAR(both[1].elapsedSec() / solo, 2.0, 0.35);
}

TEST(QueueSim, CollectStageIsSerialized) {
  // Many simultaneous results serialize through the master loader.
  CostParams p = fastParams();
  p.nodeCount = 100;
  std::vector<SimChunkTask> tasks;
  for (int w = 0; w < 100; ++w) tasks.push_back({w, 1.0, 1.0});
  auto r = simulateQuery(tasks, p);
  // 100 results x 1 s each load serially => >= 100 s.
  EXPECT_GT(r.elapsedSec(), 100.0);
}

TEST(QueueSim, DeterministicAcrossRuns) {
  CostParams p = CostParams::paper150();
  std::vector<SimChunkTask> tasks;
  for (int i = 0; i < 500; ++i) tasks.push_back({i % 150, 0.5 + (i % 7), 0.01});
  auto a = simulateQuery(tasks, p);
  auto b = simulateQuery(tasks, p);
  EXPECT_DOUBLE_EQ(a.completionSec, b.completionSec);
}

TEST(QueueSim, SubmitTimeShiftsEverything) {
  SimChunkTask t{0, 5.0, 0.5};
  SimQuery q;
  q.submitSec = 100.0;
  q.tasks = {t};
  auto r = simulateQueries({q}, fastParams())[0];
  EXPECT_NEAR(r.elapsedSec(), 6.51, 1e-6);
  EXPECT_GT(r.completionSec, 100.0);
}

}  // namespace
}  // namespace qserv::simio
