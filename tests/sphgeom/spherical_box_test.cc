#include "sphgeom/spherical_box.h"

#include <gtest/gtest.h>

#include "sphgeom/angle.h"
#include "util/rng.h"

namespace qserv::sphgeom {
namespace {

TEST(SphericalBox, DefaultIsEmpty) {
  SphericalBox b;
  EXPECT_TRUE(b.isEmpty());
  EXPECT_FALSE(b.contains(0, 0));
  EXPECT_DOUBLE_EQ(b.area(), 0.0);
}

TEST(SphericalBox, SimpleContainment) {
  SphericalBox b(10, -5, 20, 5);
  EXPECT_TRUE(b.contains(15, 0));
  EXPECT_TRUE(b.contains(10, -5));   // boundary inclusive
  EXPECT_TRUE(b.contains(20, 5));
  EXPECT_FALSE(b.contains(21, 0));
  EXPECT_FALSE(b.contains(15, 6));
  EXPECT_FALSE(b.contains(9.999, 0));
}

TEST(SphericalBox, WrappingBoxLikePt11Patch) {
  // The PT1.1 patch spans RA 358..5 (paper §6.1.2) — wraps the 0 meridian.
  SphericalBox b(358, -7, 5, 7);
  EXPECT_TRUE(b.wraps());
  EXPECT_TRUE(b.contains(359, 0));
  EXPECT_TRUE(b.contains(0, 0));
  EXPECT_TRUE(b.contains(4, 6.9));
  EXPECT_FALSE(b.contains(180, 0));
  EXPECT_FALSE(b.contains(5.01, 0));
  EXPECT_FALSE(b.contains(357.9, 0));
  EXPECT_NEAR(b.lonExtent(), 7.0, 1e-12);
}

TEST(SphericalBox, FullSkyContainsEverything) {
  SphericalBox b = SphericalBox::fullSky();
  EXPECT_TRUE(b.isFullLon());
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(b.contains(rng.uniform(0, 360), rng.uniform(-90, 90)));
  }
  EXPECT_NEAR(b.area(), 4 * kPi * kDegPerRad * kDegPerRad, 1e-6);
}

TEST(SphericalBox, InvalidLatOrderIsEmpty) {
  SphericalBox b(0, 10, 10, -10);
  EXPECT_TRUE(b.isEmpty());
}

TEST(SphericalBox, IntersectsBasic) {
  SphericalBox a(0, 0, 10, 10);
  EXPECT_TRUE(a.intersects(SphericalBox(5, 5, 15, 15)));
  EXPECT_TRUE(a.intersects(SphericalBox(10, 10, 20, 20)));  // corner touch
  EXPECT_FALSE(a.intersects(SphericalBox(11, 0, 20, 10)));
  EXPECT_FALSE(a.intersects(SphericalBox(0, 11, 10, 20)));
  EXPECT_TRUE(a.intersects(a));
}

TEST(SphericalBox, IntersectsAcrossWrap) {
  SphericalBox wrap(350, -10, 10, 10);
  EXPECT_TRUE(wrap.intersects(SphericalBox(0, 0, 5, 5)));
  EXPECT_TRUE(wrap.intersects(SphericalBox(355, 0, 358, 5)));
  EXPECT_FALSE(wrap.intersects(SphericalBox(100, 0, 200, 5)));
  EXPECT_TRUE(wrap.intersects(SphericalBox(340, -5, 352, 5)));
  // Two wrapping boxes.
  EXPECT_TRUE(wrap.intersects(SphericalBox(355, -5, 2, 5)));
}

TEST(SphericalBox, IntersectsEmptyIsFalse) {
  SphericalBox a(0, 0, 10, 10);
  EXPECT_FALSE(a.intersects(SphericalBox()));
  EXPECT_FALSE(SphericalBox().intersects(a));
}

TEST(SphericalBox, IntersectionConsistentWithSharedPoints) {
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    double l1 = rng.uniform(0, 360), l2 = l1 + rng.uniform(0, 90);
    double m1 = rng.uniform(-80, 70), m2 = m1 + rng.uniform(0, 20);
    double l3 = rng.uniform(0, 360), l4 = l3 + rng.uniform(0, 90);
    double m3 = rng.uniform(-80, 70), m4 = m3 + rng.uniform(0, 20);
    SphericalBox a(l1, m1, l2, m2), b(l3, m3, l4, m4);
    // Sample a dense grid of A; if any sampled point is in B they must
    // report intersection.
    bool shared = false;
    for (int gi = 0; gi <= 10 && !shared; ++gi) {
      for (int gj = 0; gj <= 10 && !shared; ++gj) {
        double lon = l1 + (l2 - l1) * gi / 10.0;
        double lat = m1 + (m2 - m1) * gj / 10.0;
        if (b.contains(normalizeLonDeg(lon), lat)) shared = true;
      }
    }
    if (shared) {
      EXPECT_TRUE(a.intersects(b)) << a.toString() << " vs " << b.toString();
      EXPECT_TRUE(b.intersects(a));
    }
  }
}

TEST(SphericalBox, DilatedContainsOriginalNeighborhood) {
  SphericalBox b(10, 10, 20, 20);
  SphericalBox d = b.dilated(1.0);
  EXPECT_TRUE(d.contains(9.5, 10));   // extends west
  EXPECT_TRUE(d.contains(20.5, 20));  // extends east
  EXPECT_TRUE(d.contains(15, 9.2));
  EXPECT_TRUE(d.contains(15, 20.8));
  EXPECT_FALSE(d.contains(15, 22.0));
}

TEST(SphericalBox, DilationLonMarginGrowsWithLatitude) {
  // At 60 deg latitude, 1 deg of arc spans 2 deg of longitude.
  SphericalBox b(100, 59, 110, 60);
  SphericalBox d = b.dilated(1.0);
  EXPECT_TRUE(d.contains(100 - 1.9, 59.5));
  EXPECT_FALSE(d.contains(100 - 2.5, 59.5));
}

TEST(SphericalBox, DilationCoversAllNearbyPoints) {
  // Property: every point within r of the box is inside the dilated box.
  util::Rng rng(8);
  SphericalBox b(340, 30, 20, 50);  // wrapping, mid-latitude
  double r = 0.5;
  SphericalBox d = b.dilated(r);
  for (int i = 0; i < 2000; ++i) {
    double lon = rng.uniform(0, 360);
    double lat = rng.uniform(25, 55);
    // Find if the point is within r of the box by sampling box boundary.
    if (b.contains(lon, lat)) {
      EXPECT_TRUE(d.contains(lon, lat));
      continue;
    }
    double best = 1e9;
    for (int gi = 0; gi <= 40; ++gi) {
      double t = gi / 40.0;
      double blon = normalizeLonDeg(340 + 40 * t);
      for (double blat : {30.0, 50.0}) best = std::min(best, angSepDeg(lon, lat, blon, blat));
      for (double blon2 : {340.0, 20.0}) {
        double blat2 = 30 + 20 * t;
        best = std::min(best, angSepDeg(lon, lat, blon2, blat2));
      }
    }
    if (best < r * 0.999) {
      EXPECT_TRUE(d.contains(lon, lat))
          << "point (" << lon << "," << lat << ") at distance " << best;
    }
  }
}

TEST(SphericalBox, DilationNearPoleBecomesFullLon) {
  SphericalBox b(10, 88, 20, 89);
  SphericalBox d = b.dilated(1.5);
  EXPECT_TRUE(d.isFullLon());
  EXPECT_TRUE(d.contains(200, 89.5));
}

TEST(SphericalBox, AreaOfKnownBoxes) {
  // A 1-degree square box at the equator is slightly less than 1 deg^2.
  SphericalBox eq(0, -0.5, 1, 0.5);
  EXPECT_NEAR(eq.area(), 1.0, 1e-4);
  // Same box at 60 degrees latitude has ~cos(60)=0.5 the area.
  SphericalBox mid(0, 59.5, 1, 60.5);
  EXPECT_NEAR(mid.area(), 0.5, 1e-3);
}

TEST(SphericalBox, AreaAdditivity) {
  SphericalBox whole(0, 0, 30, 20);
  SphericalBox left(0, 0, 15, 20);
  SphericalBox right(15, 0, 30, 20);
  EXPECT_NEAR(whole.area(), left.area() + right.area(), 1e-9);
}

TEST(SphericalBox, EqualityAndToString) {
  SphericalBox a(10, 0, 20, 5);
  SphericalBox b(10, 0, 20, 5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.toString().find("box"), std::string::npos);
}

}  // namespace
}  // namespace qserv::sphgeom
