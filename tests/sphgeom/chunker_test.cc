#include "sphgeom/chunker.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sphgeom/angle.h"
#include "util/rng.h"
#include "util/stats.h"

namespace qserv::sphgeom {
namespace {

// The paper's test configuration (§6.1.2).
Chunker paperChunker() { return Chunker(85, 12, kArcminDeg); }

TEST(Chunker, PaperConfigurationGeometry) {
  Chunker c = paperChunker();
  // "85 stripes each with 12 sub-stripes giving a phi height of ~2.11 deg
  //  for stripes and 0.176 deg for sub-stripes" (§6.1.2).
  EXPECT_NEAR(c.stripeHeightDeg(), 2.1176, 1e-3);
  EXPECT_NEAR(c.subStripeHeightDeg(), 0.1765, 1e-3);
  // "This yielded 8983 chunks." Our segments() reproduces the paper's
  // construction exactly.
  EXPECT_EQ(c.totalChunkCount(), 8983);
}

TEST(Chunker, ChunkAreasRoughlyEqualAwayFromPoles) {
  Chunker c = paperChunker();
  util::RunningStats areas;
  for (std::int32_t id : c.allChunks()) {
    SphericalBox box = c.chunkBox(id);
    // Skip polar caps where distortion is expected (paper §7.5).
    if (box.latMin() < -80 || box.latMax() > 80) continue;
    areas.add(box.area());
  }
  // "~4.5 deg^2" per chunk.
  EXPECT_NEAR(areas.mean(), 4.5, 0.4);
  // Equal-area within a factor of ~2 between min and max.
  EXPECT_LT(areas.max() / areas.min(), 2.1);
}

TEST(Chunker, SubChunkAreasMatchPaper) {
  Chunker c = paperChunker();
  // Sample an equatorial chunk: subchunks ~0.031 deg^2 (§6.1.2).
  std::int32_t id = c.chunkAt(180.0, 0.0);
  util::RunningStats areas;
  for (std::int32_t sc : c.subChunksOf(id)) {
    areas.add(c.subChunkBox(id, sc).area());
  }
  EXPECT_NEAR(areas.mean(), 0.031, 0.006);
}

TEST(Chunker, EveryPointMapsToExactlyOneChunkContainingIt) {
  Chunker c(18, 6);
  util::Rng rng(101);
  for (int i = 0; i < 5000; ++i) {
    double lon = rng.uniform(0, 360);
    double lat = rng.uniform(-90, 90);
    std::int32_t id = c.chunkAt(lon, lat);
    ASSERT_TRUE(c.isValidChunk(id));
    EXPECT_TRUE(c.chunkBox(id).contains(lon, lat))
        << "point (" << lon << "," << lat << ") chunk " << id << " box "
        << c.chunkBox(id).toString();
  }
}

TEST(Chunker, SubChunkContainsItsPoint) {
  Chunker c(18, 6);
  util::Rng rng(102);
  for (int i = 0; i < 5000; ++i) {
    double lon = rng.uniform(0, 360);
    double lat = rng.uniform(-90, 90);
    std::int32_t id = c.chunkAt(lon, lat);
    std::int32_t sc = c.subChunkAt(id, lon, lat);
    ASSERT_TRUE(c.isValidSubChunk(id, sc));
    EXPECT_TRUE(c.subChunkBox(id, sc).contains(lon, lat));
  }
}

TEST(Chunker, SubChunksTileTheirChunk) {
  Chunker c(18, 6);
  util::Rng rng(103);
  // For random points in a chunk, exactly one subchunk contains them
  // (boundaries may double-count; use interior points).
  for (std::int32_t id : {c.chunkAt(0.1, 0.1), c.chunkAt(200, 45),
                          c.chunkAt(10, -80), c.chunkAt(359, 89)}) {
    SphericalBox box = c.chunkBox(id);
    for (int i = 0; i < 300; ++i) {
      double lon = normalizeLonDeg(
          box.lonMin() + rng.uniform(0.001, 0.999) * box.lonExtent());
      double lat =
          box.latMin() + rng.uniform(0.001, 0.999) * box.latExtent();
      int containing = 0;
      for (std::int32_t sc : c.subChunksOf(id)) {
        if (c.subChunkBox(id, sc).contains(lon, lat)) ++containing;
      }
      EXPECT_GE(containing, 1);
      EXPECT_LE(containing, 2) << "interior point in >2 subchunks";
      EXPECT_TRUE(c.subChunkBox(id, c.subChunkAt(id, lon, lat))
                      .contains(lon, lat));
    }
  }
}

TEST(Chunker, ChunkIdsAreUniqueAndValid) {
  Chunker c(18, 6);
  auto chunks = c.allChunks();
  std::set<std::int32_t> uniq(chunks.begin(), chunks.end());
  EXPECT_EQ(uniq.size(), chunks.size());
  EXPECT_EQ(static_cast<int>(chunks.size()), c.totalChunkCount());
  for (std::int32_t id : chunks) EXPECT_TRUE(c.isValidChunk(id));
  EXPECT_FALSE(c.isValidChunk(-1));
  EXPECT_FALSE(c.isValidChunk(c.numStripes() * 2 * c.numStripes()));
}

TEST(Chunker, ChunkBoxesCoverSphereWithoutOverlapInteriorly) {
  Chunker c(10, 3);
  util::Rng rng(104);
  for (int i = 0; i < 3000; ++i) {
    double lon = rng.uniform(0, 360);
    double lat = rng.uniform(-90, 90);
    int containing = 0;
    for (std::int32_t id : c.allChunks()) {
      if (c.chunkBox(id).contains(lon, lat)) ++containing;
    }
    // Interior points in exactly 1 box; boundary points may touch up to 4.
    EXPECT_GE(containing, 1);
    EXPECT_LE(containing, 4);
  }
}

TEST(Chunker, ChunksIntersectingFindsExactlyTheIntersectingOnes) {
  Chunker c(18, 6);
  util::Rng rng(105);
  for (int i = 0; i < 50; ++i) {
    double lonMin = rng.uniform(0, 360);
    double latMin = rng.uniform(-85, 75);
    SphericalBox box(lonMin, latMin, lonMin + rng.uniform(1, 40),
                     latMin + rng.uniform(1, 10));
    auto got = c.chunksIntersecting(box);
    std::set<std::int32_t> gotSet(got.begin(), got.end());
    for (std::int32_t id : c.allChunks()) {
      EXPECT_EQ(gotSet.count(id) > 0, box.intersects(c.chunkBox(id)))
          << "chunk " << id;
    }
  }
}

TEST(Chunker, ChunksIntersectingWrappingBox) {
  Chunker c = paperChunker();
  // The PT1.1 patch: RA 358..5, Dec -7..7.
  SphericalBox patch(358, -7, 5, 7);
  auto got = c.chunksIntersecting(patch);
  EXPECT_FALSE(got.empty());
  for (std::int32_t id : got) {
    EXPECT_TRUE(patch.intersects(c.chunkBox(id)));
  }
  // Sanity: the patch covers ~7x14 deg ~ 98 deg^2 => ~22+ chunks of 4.5 deg^2.
  EXPECT_GT(got.size(), 20u);
  EXPECT_LT(got.size(), 60u);
}

TEST(Chunker, FullSkySelectsAllChunks) {
  Chunker c(10, 3);
  auto got = c.chunksIntersecting(SphericalBox::fullSky());
  EXPECT_EQ(static_cast<int>(got.size()), c.totalChunkCount());
}

TEST(Chunker, SmallBoxSelectsFewChunks) {
  Chunker c = paperChunker();
  // 1 deg^2 box (the LV3 query) touches at most ~4 chunks.
  auto got = c.chunksIntersecting(SphericalBox(1, 3, 2, 4));
  EXPECT_GE(got.size(), 1u);
  EXPECT_LE(got.size(), 4u);
}

TEST(Chunker, SubChunksIntersecting) {
  Chunker c(18, 6);
  std::int32_t id = c.chunkAt(100, 20);
  SphericalBox cb = c.chunkBox(id);
  // A box covering the whole chunk selects all subchunks.
  auto all = c.subChunksIntersecting(id, cb);
  EXPECT_EQ(all.size(), c.subChunksOf(id).size());
  // A tiny box around one interior point selects >= 1 and <= 4.
  double lon = normalizeLonDeg(cb.lonMin() + 0.3 * cb.lonExtent());
  double lat = cb.latMin() + 0.3 * cb.latExtent();
  auto few = c.subChunksIntersecting(id, SphericalBox(lon, lat, lon, lat));
  EXPECT_GE(few.size(), 1u);
  EXPECT_LE(few.size(), 4u);
}

TEST(Chunker, StripeDecomposition) {
  Chunker c(18, 6);
  for (std::int32_t id : c.allChunks()) {
    int s = c.stripeOf(id);
    int ci = c.chunkInStripe(id);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 18);
    EXPECT_EQ(id, s * 36 + ci);
  }
}

TEST(Chunker, PolarChunksAreSingleOrFew) {
  Chunker c = paperChunker();
  // Topmost stripe should have very few chunks (meridian convergence).
  int topStripe = c.numStripes() - 1;
  int count = 0;
  for (std::int32_t id : c.allChunks()) {
    if (c.stripeOf(id) == topStripe) ++count;
  }
  EXPECT_LE(count, 8);
  EXPECT_GE(count, 1);
}

TEST(Chunker, InvalidConstructionThrows) {
  EXPECT_THROW(Chunker(0, 1), std::invalid_argument);
  EXPECT_THROW(Chunker(1, 0), std::invalid_argument);
  EXPECT_THROW(Chunker(10, 10, -0.5), std::invalid_argument);
}

TEST(Chunker, BoundaryPointsAtPolesAndMeridian) {
  Chunker c = paperChunker();
  EXPECT_TRUE(c.isValidChunk(c.chunkAt(0.0, 90.0)));
  EXPECT_TRUE(c.isValidChunk(c.chunkAt(0.0, -90.0)));
  EXPECT_TRUE(c.isValidChunk(c.chunkAt(360.0, 0.0)));
  EXPECT_EQ(c.chunkAt(360.0, 0.0), c.chunkAt(0.0, 0.0));
}

// Parameterized sweep: chunker invariants hold across configurations.
class ChunkerSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ChunkerSweep, PointLocationConsistent) {
  auto [stripes, subStripes] = GetParam();
  Chunker c(stripes, subStripes);
  util::Rng rng(1000 + stripes * 31 + subStripes);
  for (int i = 0; i < 800; ++i) {
    double lon = rng.uniform(0, 360);
    double lat = rng.uniform(-90, 90);
    std::int32_t id = c.chunkAt(lon, lat);
    ASSERT_TRUE(c.isValidChunk(id));
    ASSERT_TRUE(c.chunkBox(id).contains(lon, lat));
    std::int32_t sc = c.subChunkAt(id, lon, lat);
    ASSERT_TRUE(c.isValidSubChunk(id, sc));
    ASSERT_TRUE(c.subChunkBox(id, sc).contains(lon, lat));
  }
}

TEST_P(ChunkerSweep, TotalCountMatchesEnumeration) {
  auto [stripes, subStripes] = GetParam();
  Chunker c(stripes, subStripes);
  EXPECT_EQ(static_cast<int>(c.allChunks().size()), c.totalChunkCount());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ChunkerSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 3}, std::pair{5, 2},
                      std::pair{10, 4}, std::pair{18, 6}, std::pair{45, 8},
                      std::pair{85, 12}, std::pair{170, 12}));

}  // namespace
}  // namespace qserv::sphgeom
