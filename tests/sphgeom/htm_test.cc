#include "sphgeom/htm.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sphgeom/angle.h"
#include "sphgeom/coords.h"
#include "util/rng.h"
#include "util/stats.h"

namespace qserv::sphgeom::htm {
namespace {

TEST(Htm, RootIdsAndLevels) {
  for (TrixelId id = 8; id <= 15; ++id) {
    EXPECT_TRUE(isValid(id));
    EXPECT_EQ(levelOf(id), 0);
  }
  EXPECT_FALSE(isValid(0));
  EXPECT_FALSE(isValid(7));
  EXPECT_FALSE(isValid(16));  // level would be fractional
  EXPECT_TRUE(isValid(32));   // 8*4: level 1
  EXPECT_EQ(levelOf(32), 1);
  EXPECT_EQ(levelOf(8ULL << 10), 5);
}

TEST(Htm, ParentChildRelations) {
  TrixelId id = 8;
  auto kids = childrenOf(id);
  for (TrixelId k : kids) {
    EXPECT_EQ(parentOf(k), id);
    EXPECT_EQ(levelOf(k), 1);
  }
}

TEST(Htm, RootsPartitionTheSphere) {
  util::Rng rng(200);
  for (int i = 0; i < 2000; ++i) {
    Vector3d v = toXyz(rng.uniform(0, 360), rng.uniform(-90, 90));
    int containing = 0;
    for (TrixelId id = 8; id <= 15; ++id) {
      if (trixelContains(id, v)) ++containing;
    }
    EXPECT_GE(containing, 1);
    EXPECT_LE(containing, 3);  // boundary points may touch several
  }
}

TEST(Htm, PointToTrixelContainsPoint) {
  util::Rng rng(201);
  for (int level : {0, 1, 3, 6, 10}) {
    for (int i = 0; i < 500; ++i) {
      Vector3d v = toXyz(rng.uniform(0, 360), rng.uniform(-90, 90));
      TrixelId id = pointToTrixel(v, level);
      EXPECT_EQ(levelOf(id), level);
      EXPECT_TRUE(trixelContains(id, v)) << "level " << level;
    }
  }
}

TEST(Htm, ChildIdsNestUnderParent) {
  util::Rng rng(202);
  for (int i = 0; i < 500; ++i) {
    Vector3d v = toXyz(rng.uniform(0, 360), rng.uniform(-90, 90));
    TrixelId deep = pointToTrixel(v, 8);
    TrixelId shallow = pointToTrixel(v, 5);
    EXPECT_EQ(deep >> 6, shallow);  // 3 levels = 6 bits
  }
}

TEST(Htm, TrixelCountByLevel) {
  // 8 * 4^L trixels at level L; verify via distinct ids of random points at
  // a low level where sampling saturates.
  util::Rng rng(203);
  std::set<TrixelId> seen;
  for (int i = 0; i < 20000; ++i) {
    seen.insert(
        pointToTrixel(rng.uniform(0, 360), rng.uniform(-90, 90), 2));
  }
  EXPECT_EQ(seen.size(), 8u * 16u);
}

TEST(Htm, AreasSumToSphere) {
  double total = 0;
  for (TrixelId id = 8; id <= 15; ++id) total += trixelArea(id);
  EXPECT_NEAR(total, 4 * kPi * kDegPerRad * kDegPerRad, 1.0);
}

TEST(Htm, ChildAreasSumToParent) {
  for (TrixelId id : {TrixelId{8}, TrixelId{13}}) {
    double parent = trixelArea(id);
    double kids = 0;
    for (TrixelId k : childrenOf(id)) kids += trixelArea(k);
    EXPECT_NEAR(kids, parent, parent * 0.01);
  }
}

TEST(Htm, AreaVarianceIsBounded) {
  // HTM trixels at one level vary in area by a bounded factor (~2);
  // this is the §7.5 claim that hierarchical schemes have "less variation
  // in area" than lon/lat boxes near poles.
  util::Rng rng(204);
  std::map<TrixelId, double> areas;
  for (int i = 0; i < 5000; ++i) {
    TrixelId id = pointToTrixel(rng.uniform(0, 360), rng.uniform(-90, 90), 3);
    if (!areas.count(id)) areas[id] = trixelArea(id);
  }
  double mn = 1e18, mx = 0;
  for (auto& [id, a] : areas) {
    mn = std::min(mn, a);
    mx = std::max(mx, a);
  }
  EXPECT_LT(mx / mn, 2.5);
}

TEST(Htm, CoverBoxIsConservative) {
  // Every point of the box lies in some covering trixel.
  util::Rng rng(205);
  for (int trial = 0; trial < 20; ++trial) {
    double lon = rng.uniform(0, 350);
    double lat = rng.uniform(-70, 60);
    SphericalBox box(lon, lat, lon + rng.uniform(0.5, 10),
                     lat + rng.uniform(0.5, 10));
    int level = 5;
    auto cover = coverBox(box, level);
    ASSERT_FALSE(cover.empty());
    std::set<TrixelId> coverSet(cover.begin(), cover.end());
    for (int i = 0; i < 200; ++i) {
      double plon = normalizeLonDeg(lon + rng.uniform(0, 1) * (box.lonExtent()));
      double plat = box.latMin() + rng.uniform(0, 1) * box.latExtent();
      TrixelId id = pointToTrixel(plon, plat, level);
      EXPECT_TRUE(coverSet.count(id))
          << "point (" << plon << "," << plat << ") trixel " << id
          << " missing from cover of " << box.toString();
    }
  }
}

TEST(Htm, CoverBoxIsReasonablyTight) {
  // The cover should not blow up to the whole sphere for a small box.
  SphericalBox box(100, 10, 103, 13);
  auto cover = coverBox(box, 6);
  // Level 6: 8*4^6 = 32768 trixels over the sphere, each ~1.26 deg^2.
  // A 9 deg^2 box should be covered by a few dozen, not thousands.
  EXPECT_LT(cover.size(), 200u);
  EXPECT_GE(cover.size(), 4u);
}

TEST(Htm, CoverFullSkyIsEverything) {
  auto cover = coverBox(SphericalBox::fullSky(), 2);
  std::set<TrixelId> uniq(cover.begin(), cover.end());
  EXPECT_EQ(uniq.size(), 8u * 16u);
}

TEST(Htm, CoverRangesMatchCoverSet) {
  SphericalBox box(40, -20, 55, -5);
  auto ids = coverBox(box, 6);
  auto ranges = coverBoxRanges(box, 6);
  std::set<TrixelId> fromRanges;
  for (const auto& r : ranges) {
    ASSERT_LE(r.first, r.last);
    for (TrixelId id = r.first; id <= r.last; ++id) fromRanges.insert(id);
  }
  std::set<TrixelId> fromIds(ids.begin(), ids.end());
  EXPECT_EQ(fromRanges, fromIds);
}

TEST(Htm, CoverRangesAreSortedDisjointAndMaximal) {
  SphericalBox box(100, 10, 112, 22);
  auto ranges = coverBoxRanges(box, 7);
  ASSERT_FALSE(ranges.empty());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    // Sorted, disjoint, and not mergeable (a gap of at least one id).
    EXPECT_GT(ranges[i].first, ranges[i - 1].last + 1);
  }
}

TEST(Htm, RangesCompressSpatialLocality) {
  // §7.5: small regions map to FEW contiguous ranges — far fewer than the
  // trixel count — because siblings share id prefixes.
  SphericalBox box(200, -40, 206, -34);
  auto ids = coverBox(box, 8);
  auto ranges = coverBoxRanges(box, 8);
  EXPECT_GE(ids.size(), 40u);
  EXPECT_LT(ranges.size() * 2, ids.size());
}

TEST(Htm, VerticesAreUnitAndCcw) {
  util::Rng rng(206);
  for (int i = 0; i < 200; ++i) {
    TrixelId id = pointToTrixel(rng.uniform(0, 360), rng.uniform(-90, 90), 4);
    auto v = trixelVertices(id);
    for (auto& p : v) EXPECT_NEAR(p.norm(), 1.0, 1e-12);
    // CCW orientation: centroid on the positive side of each edge.
    Vector3d c = (v[0] + v[1] + v[2]).normalized();
    EXPECT_GT(v[0].cross(v[1]).dot(c), 0);
    EXPECT_GT(v[1].cross(v[2]).dot(c), 0);
    EXPECT_GT(v[2].cross(v[0]).dot(c), 0);
  }
}

}  // namespace
}  // namespace qserv::sphgeom::htm
