#include "sphgeom/coords.h"

#include <gtest/gtest.h>

#include "sphgeom/angle.h"
#include "util/rng.h"

namespace qserv::sphgeom {
namespace {

TEST(Angle, NormalizeLon) {
  EXPECT_DOUBLE_EQ(normalizeLonDeg(0.0), 0.0);
  EXPECT_DOUBLE_EQ(normalizeLonDeg(360.0), 0.0);
  EXPECT_DOUBLE_EQ(normalizeLonDeg(-1.0), 359.0);
  EXPECT_DOUBLE_EQ(normalizeLonDeg(725.0), 5.0);
  EXPECT_DOUBLE_EQ(normalizeLonDeg(-725.0), 355.0);
}

TEST(Angle, ClampLat) {
  EXPECT_DOUBLE_EQ(clampLatDeg(91.0), 90.0);
  EXPECT_DOUBLE_EQ(clampLatDeg(-91.0), -90.0);
  EXPECT_DOUBLE_EQ(clampLatDeg(45.0), 45.0);
}

TEST(Coords, AxisPoints) {
  Vector3d x = toXyz(0.0, 0.0);
  EXPECT_NEAR(x.x, 1.0, 1e-15);
  EXPECT_NEAR(x.y, 0.0, 1e-15);
  EXPECT_NEAR(x.z, 0.0, 1e-15);

  Vector3d np = toXyz(123.0, 90.0);
  EXPECT_NEAR(np.z, 1.0, 1e-15);

  Vector3d y = toXyz(90.0, 0.0);
  EXPECT_NEAR(y.y, 1.0, 1e-15);
}

TEST(Coords, RoundTripRandomPoints) {
  util::Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    double lon = rng.uniform(0.0, 360.0);
    double lat = rng.uniform(-89.9, 89.9);
    LonLat p = toLonLat(toXyz(lon, lat));
    EXPECT_NEAR(p.lon, lon, 1e-9);
    EXPECT_NEAR(p.lat, lat, 1e-9);
  }
}

TEST(Coords, UnitNorm) {
  util::Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    Vector3d v = toXyz(rng.uniform(0, 360), rng.uniform(-90, 90));
    EXPECT_NEAR(v.norm(), 1.0, 1e-14);
  }
}

TEST(AngSep, IdenticalPointsZero) {
  EXPECT_DOUBLE_EQ(angSepDeg(10.0, 20.0, 10.0, 20.0), 0.0);
}

TEST(AngSep, Antipodes) {
  EXPECT_NEAR(angSepDeg(0.0, 0.0, 180.0, 0.0), 180.0, 1e-12);
  EXPECT_NEAR(angSepDeg(0.0, 90.0, 0.0, -90.0), 180.0, 1e-12);
}

TEST(AngSep, EquatorLongitudeDifference) {
  // On the equator separation equals the longitude difference.
  EXPECT_NEAR(angSepDeg(10.0, 0.0, 25.0, 0.0), 15.0, 1e-12);
}

TEST(AngSep, MeridianLatitudeDifference) {
  EXPECT_NEAR(angSepDeg(42.0, -10.0, 42.0, 30.0), 40.0, 1e-12);
}

TEST(AngSep, Symmetric) {
  util::Rng rng(44);
  for (int i = 0; i < 200; ++i) {
    double a1 = rng.uniform(0, 360), d1 = rng.uniform(-90, 90);
    double a2 = rng.uniform(0, 360), d2 = rng.uniform(-90, 90);
    EXPECT_NEAR(angSepDeg(a1, d1, a2, d2), angSepDeg(a2, d2, a1, d1), 1e-12);
  }
}

TEST(AngSep, TriangleInequality) {
  util::Rng rng(45);
  for (int i = 0; i < 200; ++i) {
    double a1 = rng.uniform(0, 360), d1 = rng.uniform(-90, 90);
    double a2 = rng.uniform(0, 360), d2 = rng.uniform(-90, 90);
    double a3 = rng.uniform(0, 360), d3 = rng.uniform(-90, 90);
    double ab = angSepDeg(a1, d1, a2, d2);
    double bc = angSepDeg(a2, d2, a3, d3);
    double ac = angSepDeg(a1, d1, a3, d3);
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

TEST(AngSep, AgreesWithDotProduct) {
  util::Rng rng(46);
  for (int i = 0; i < 500; ++i) {
    double a1 = rng.uniform(0, 360), d1 = rng.uniform(-90, 90);
    double a2 = rng.uniform(0, 360), d2 = rng.uniform(-90, 90);
    double dot = toXyz(a1, d1).dot(toXyz(a2, d2));
    dot = std::clamp(dot, -1.0, 1.0);
    double viaDot = radToDeg(std::acos(dot));
    EXPECT_NEAR(angSepDeg(a1, d1, a2, d2), viaDot, 1e-6);
  }
}

TEST(AngSep, StableForTinySeparations) {
  // Haversine keeps precision where acos(dot) loses it.
  double sep = angSepDeg(100.0, 30.0, 100.0, 30.0 + 1e-7);
  EXPECT_NEAR(sep, 1e-7, 1e-13);
}

TEST(AngSep, WrapsAcrossZeroMeridian) {
  EXPECT_NEAR(angSepDeg(359.5, 0.0, 0.5, 0.0), 1.0, 1e-12);
}

TEST(RaSearchWindow, DegenerateRadii) {
  EXPECT_DOUBLE_EQ(raSearchWindowDeg(0.0, 45.0), 0.0);
  EXPECT_DOUBLE_EQ(raSearchWindowDeg(-1.0, 45.0), 0.0);
  EXPECT_DOUBLE_EQ(raSearchWindowDeg(std::nan(""), 45.0), 0.0);
  EXPECT_DOUBLE_EQ(raSearchWindowDeg(90.0, 0.0), 180.0);
}

TEST(RaSearchWindow, EquatorIsNearlyRadius) {
  // At dec = 0 the window is atan(tan r) = r exactly.
  EXPECT_NEAR(raSearchWindowDeg(1.0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(raSearchWindowDeg(kArcminDeg, 0.0), kArcminDeg, 1e-12);
}

TEST(RaSearchWindow, PolarCapsCoverAllRa) {
  EXPECT_DOUBLE_EQ(raSearchWindowDeg(1.0, 89.5), 180.0);
  EXPECT_DOUBLE_EQ(raSearchWindowDeg(1.0, -89.5), 180.0);
  EXPECT_DOUBLE_EQ(raSearchWindowDeg(0.5, 89.5), 180.0);
}

TEST(RaSearchWindow, DominatesNaiveCosineWidening) {
  // The exact alpha bound must cover at least r / cos(dec), the zones-paper
  // approximation, away from the poles.
  for (double dec : {0.0, 15.0, -40.0, 60.0, 85.0}) {
    for (double r : {1e-4, 0.0045, kArcminDeg, 0.5, 2.0}) {
      if (std::fabs(dec) + r >= 90.0) continue;
      double naive = r / std::cos(degToRad(dec));
      EXPECT_GE(raSearchWindowDeg(r, dec), naive - 1e-12)
          << "r=" << r << " dec=" << dec;
    }
  }
}

TEST(RaSearchWindow, BoundsAllPointsWithinRadius) {
  // Any point within r of (ra0, dec0) differs in RA by at most the window.
  util::Rng rng(47);
  for (int i = 0; i < 2000; ++i) {
    double ra0 = rng.uniform(0, 360), dec0 = rng.uniform(-89.0, 89.0);
    double ra1 = rng.uniform(0, 360), dec1 = rng.uniform(-90, 90);
    double r = rng.uniform(1e-4, 5.0);
    if (angSepDeg(ra0, dec0, ra1, dec1) > r) continue;
    double w = raSearchWindowDeg(r, dec0);
    double dra = std::fabs(ra1 - ra0);
    if (dra > 180.0) dra = 360.0 - dra;
    EXPECT_LE(dra, w + 1e-9) << "r=" << r << " dec0=" << dec0;
  }
}

}  // namespace
}  // namespace qserv::sphgeom
