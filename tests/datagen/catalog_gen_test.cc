#include "datagen/catalog_gen.h"

#include <gtest/gtest.h>

#include <set>

#include "sphgeom/angle.h"
#include "sphgeom/coords.h"
#include "util/stats.h"

namespace qserv::datagen {
namespace {

TEST(BasePatch, ObjectsLieInPatchBox) {
  BasePatchOptions opts;
  opts.objectCount = 2000;
  BasePatchGenerator gen(opts);
  auto objects = gen.objects();
  ASSERT_EQ(objects.size(), 2000u);
  auto box = pt11PatchBox();
  for (const auto& o : objects) {
    EXPECT_TRUE(box.contains(o.ra, o.decl))
        << "(" << o.ra << ", " << o.decl << ")";
  }
}

TEST(BasePatch, DeterministicForSeed) {
  BasePatchOptions opts;
  opts.objectCount = 100;
  auto a = BasePatchGenerator(opts).objects();
  auto b = BasePatchGenerator(opts).objects();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ra, b[i].ra);
    EXPECT_EQ(a[i].flux[0], b[i].flux[0]);
  }
}

TEST(BasePatch, ObjectIdsAreSequentialFromZero) {
  BasePatchOptions opts;
  opts.objectCount = 50;
  auto objects = BasePatchGenerator(opts).objects();
  for (std::size_t i = 0; i < objects.size(); ++i) {
    EXPECT_EQ(objects[i].objectId, static_cast<std::int64_t>(i));
  }
}

TEST(BasePatch, FluxesArePositiveAndMagLike) {
  BasePatchOptions opts;
  opts.objectCount = 1000;
  auto objects = BasePatchGenerator(opts).objects();
  for (const auto& o : objects) {
    for (double f : o.flux) {
      EXPECT_GT(f, 0.0);
      double mag = -2.5 * std::log10(f) - 48.6;
      EXPECT_GT(mag, 5.0);
      EXPECT_LT(mag, 35.0);
    }
  }
}

TEST(BasePatch, ColorCutsSelectSmallFractions) {
  // The LV3 color box must select a small but non-trivial fraction and the
  // HV2 extreme cut (i-z > 4) a tiny one.
  BasePatchOptions opts;
  opts.objectCount = 50000;
  auto objects = BasePatchGenerator(opts).objects();
  int lv3 = 0, hv2 = 0;
  for (const auto& o : objects) {
    auto mag = [](double f) { return -2.5 * std::log10(f) - 48.6; };
    double gr = mag(o.flux[1]) - mag(o.flux[2]);
    double iz = mag(o.flux[3]) - mag(o.flux[4]);
    if (gr > 0.3 && gr < 0.4 && iz > 0.1 && iz < 0.12) ++lv3;
    if (iz > 4.0) ++hv2;
  }
  EXPECT_GT(lv3, 10);
  EXPECT_LT(lv3, 5000);
  EXPECT_GT(hv2, 0);
  EXPECT_LT(hv2, 50);
}

TEST(BasePatch, SourcesAverageNearK41) {
  BasePatchOptions opts;
  opts.objectCount = 500;
  BasePatchGenerator gen(opts);
  auto objects = gen.objects();
  auto sources = gen.sourcesFor(objects);
  double k = static_cast<double>(sources.size()) / objects.size();
  EXPECT_NEAR(k, 41.0, 3.0);  // paper: k ~= 41
}

TEST(BasePatch, MostSourcesNearTheirObjectSomeStray) {
  BasePatchOptions opts;
  opts.objectCount = 500;
  BasePatchGenerator gen(opts);
  auto objects = gen.objects();
  auto sources = gen.sourcesFor(objects);
  std::size_t near = 0, far = 0;
  for (const auto& s : sources) {
    const auto& o = objects[static_cast<std::size_t>(s.objectId)];
    double sep = sphgeom::angSepDeg(s.ra, s.decl, o.ra, o.decl);
    if (sep > 0.0045) ++far;  // the SHV2 filter
    else ++near;
  }
  EXPECT_GT(near, far * 10);  // most detections are on-object
  EXPECT_GT(far, 0u);         // but the SHV2 query finds rows
}

TEST(Duplicator, FullSkyCopyCountAndBands) {
  Duplicator dup;
  EXPECT_EQ(dup.bandCount(), 13);  // ceil(180/14)
  // The equatorial band holds ~360/7 = 51 copies; polar bands far fewer.
  Duplicator::Copy equator{6, 0};
  EXPECT_GE(dup.slotsInBand(6), 45);
  EXPECT_LE(dup.slotsInBand(6), 51);
  EXPECT_LE(dup.slotsInBand(0), 10);
  EXPECT_GT(dup.totalCopies(), 300);
  (void)equator;
}

TEST(Duplicator, CopyBoxesTileEachBand) {
  Duplicator dup;
  for (int band : {0, 3, 6, 12}) {
    double covered = 0;
    for (int s = 0; s < dup.slotsInBand(band); ++s) {
      covered += dup.copyBox({band, s}).lonExtent();
    }
    EXPECT_NEAR(covered, 360.0, 1e-6) << "band " << band;
  }
}

TEST(Duplicator, TransformLandsInsideCopyBox) {
  Duplicator dup;
  BasePatchOptions opts;
  opts.objectCount = 200;
  auto objects = BasePatchGenerator(opts).objects();
  for (int band : {0, 6, 11}) {
    for (int slot : {0, dup.slotsInBand(band) - 1}) {
      Duplicator::Copy c{band, slot};
      auto box = dup.copyBox(c);
      for (const auto& o : objects) {
        auto p = dup.transform(c, o.ra, o.decl);
        if (p.lat > 90.0) continue;  // top-band spill is dropped by loaders
        EXPECT_TRUE(box.dilated(1e-6).contains(p.lon, p.lat))
            << "band " << band << " slot " << slot << " point (" << p.lon
            << "," << p.lat << ") box " << box.toString();
      }
    }
  }
}

TEST(Duplicator, PreservesRelativeDeclination) {
  Duplicator dup;
  Duplicator::Copy c{6, 3};
  auto p1 = dup.transform(c, 0.0, -7.0);
  auto p2 = dup.transform(c, 0.0, 7.0);
  EXPECT_NEAR(p2.lat - p1.lat, 14.0, 1e-9);
}

TEST(Duplicator, RaStretchGrowsTowardPoles) {
  Duplicator dup;
  auto width = [&](int band) {
    return dup.copyBox({band, 0}).lonExtent();
  };
  EXPECT_GT(width(0), width(3));
  EXPECT_GT(width(3), width(6));
  EXPECT_NEAR(width(6), 7.0, 1.0);  // near-equator copies are ~patch width
}

TEST(Duplicator, DensityRoughlyPreservedAcrossBands) {
  // Objects per solid angle must match within ~an order of magnitude
  // (paper §4.4: "within an order of magnitude").
  Duplicator dup;
  BasePatchOptions opts;
  opts.objectCount = 3000;
  auto objects = BasePatchGenerator(opts).objects();
  double basePatchArea = pt11PatchBox().area();
  double baseDensity = objects.size() / basePatchArea;
  for (int band : {1, 6, 11}) {
    Duplicator::Copy c{band, 0};
    auto box = dup.copyBox(c);
    std::size_t kept = 0;
    for (const auto& o : objects) {
      auto p = dup.transform(c, o.ra, o.decl);
      if (p.lat <= 90.0) ++kept;
    }
    double density = kept / box.area();
    EXPECT_GT(density, baseDensity / 3.0) << "band " << band;
    EXPECT_LT(density, baseDensity * 3.0) << "band " << band;
  }
}

TEST(Duplicator, CopiesIntersectingRegion) {
  Duplicator dup;
  // A small equatorial region.
  auto copies = dup.copiesIntersecting(sphgeom::SphericalBox(10, -3, 20, 3));
  EXPECT_GE(copies.size(), 2u);
  EXPECT_LE(copies.size(), 8u);
  for (const auto& c : copies) {
    EXPECT_TRUE(dup.copyBox(c).intersects(sphgeom::SphericalBox(10, -3, 20, 3)));
  }
  // Full sky selects every copy.
  EXPECT_EQ(dup.copiesIntersecting(sphgeom::SphericalBox::fullSky()).size(),
            static_cast<std::size_t>(dup.totalCopies()));
}

TEST(Duplicator, DecRangeRestrictsBands) {
  Duplicator::Options opts;
  opts.decMin = -54.0;
  opts.decMax = 54.0;  // the paper's Source clipping
  Duplicator dup(opts);
  EXPECT_LT(dup.bandCount(), 13);
  for (const auto& c : dup.copiesIntersecting(sphgeom::SphericalBox::fullSky())) {
    auto box = dup.copyBox(c);
    EXPECT_GT(box.latMax(), -62.0);
    EXPECT_LT(box.latMin(), 62.0);
  }
}

TEST(Duplicator, IdOffsetsNeverCollide) {
  Duplicator dup;
  std::set<std::int64_t> offsets;
  std::int64_t baseCount = 1000;
  for (int b = 0; b < dup.bandCount(); ++b) {
    for (int s = 0; s < dup.slotsInBand(b); ++s) {
      auto [it, inserted] = offsets.insert(dup.idOffset({b, s}, baseCount));
      EXPECT_TRUE(inserted);
    }
  }
  // Offsets are multiples of baseCount, so id ranges are disjoint.
  for (std::int64_t off : offsets) EXPECT_EQ(off % baseCount, 0);
}

}  // namespace
}  // namespace qserv::datagen
