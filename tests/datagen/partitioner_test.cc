#include "datagen/partitioner.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/schemas.h"
#include "sphgeom/coords.h"

namespace qserv::datagen {
namespace {

class PartitionerTest : public ::testing::Test {
 protected:
  PartitionerTest() : chunker_(18, 6, 0.05) {}

  void SetUp() override {
    BasePatchOptions opts;
    opts.objectCount = 1500;
    BasePatchGenerator gen(opts);
    objects_ = gen.objects();
    sources_ = gen.sourcesFor(objects_);
    auto r = partitionCatalog(chunker_, objects_, sources_);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    catalog_ = std::move(r).value();
  }

  sphgeom::Chunker chunker_;
  std::vector<ObjectRow> objects_;
  std::vector<SourceRow> sources_;
  PartitionedCatalog catalog_;
};

TEST_F(PartitionerTest, EveryObjectLandsInExactlyOneChunkTable) {
  std::size_t total = 0;
  for (const auto& chunk : catalog_.chunks) total += chunk.objects->numRows();
  EXPECT_EQ(total, objects_.size());
}

TEST_F(PartitionerTest, ChunkAssignmentMatchesChunker) {
  for (const auto& chunk : catalog_.chunks) {
    for (std::size_t r = 0; r < chunk.objects->numRows(); ++r) {
      double ra = chunk.objects->cell(r, kObjRaPs).asDouble();
      double dec = chunk.objects->cell(r, kObjDeclPs).asDouble();
      EXPECT_EQ(chunker_.chunkAt(ra, dec), chunk.chunkId);
      EXPECT_EQ(chunk.objects->cell(r, kObjChunkId).asInt(), chunk.chunkId);
      EXPECT_EQ(chunk.objects->cell(r, kObjSubChunkId).asInt(),
                chunker_.subChunkAt(chunk.chunkId, ra, dec));
    }
  }
}

TEST_F(PartitionerTest, OverlapRowsAreNearButNotInsideTheChunk) {
  bool sawAny = false;
  for (const auto& chunk : catalog_.chunks) {
    auto box = chunker_.chunkBox(chunk.chunkId);
    auto dilated = box.dilated(chunker_.overlapDeg());
    for (std::size_t r = 0; r < chunk.objectOverlap->numRows(); ++r) {
      sawAny = true;
      double ra = chunk.objectOverlap->cell(r, kObjRaPs).asDouble();
      double dec = chunk.objectOverlap->cell(r, kObjDeclPs).asDouble();
      EXPECT_FALSE(chunker_.chunkAt(ra, dec) == chunk.chunkId)
          << "overlap row owned by the same chunk";
      EXPECT_TRUE(dilated.contains(ra, dec));
    }
  }
  EXPECT_TRUE(sawAny) << "no overlap rows at all — margin too small?";
}

TEST_F(PartitionerTest, OverlapIsComplete) {
  // Every object within the overlap margin of a foreign chunk's box must be
  // in that chunk's overlap table.
  std::map<std::int32_t, std::set<std::int64_t>> overlapIds;
  for (const auto& chunk : catalog_.chunks) {
    for (std::size_t r = 0; r < chunk.objectOverlap->numRows(); ++r) {
      overlapIds[chunk.chunkId].insert(
          chunk.objectOverlap->cell(r, kObjObjectId).asInt());
    }
  }
  for (const auto& o : objects_) {
    std::int32_t owner = chunker_.chunkAt(o.ra, o.decl);
    for (const auto& chunk : catalog_.chunks) {
      if (chunk.chunkId == owner) continue;
      if (chunker_.chunkBox(chunk.chunkId)
              .dilated(chunker_.overlapDeg())
              .contains(o.ra, o.decl)) {
        EXPECT_TRUE(overlapIds[chunk.chunkId].count(o.objectId))
            << "object " << o.objectId << " missing from overlap of chunk "
            << chunk.chunkId;
      }
    }
  }
}

TEST_F(PartitionerTest, SourcesAreColocatedWithTheirObject) {
  std::map<std::int64_t, std::int32_t> objectChunk;
  for (const auto& e : catalog_.index) objectChunk[e.objectId] = e.chunkId;
  std::size_t total = 0;
  for (const auto& chunk : catalog_.chunks) {
    for (std::size_t r = 0; r < chunk.sources->numRows(); ++r) {
      std::int64_t oid = chunk.sources->cell(r, kSrcObjectId).asInt();
      EXPECT_EQ(objectChunk.at(oid), chunk.chunkId);
      ++total;
    }
  }
  EXPECT_EQ(total, sources_.size());
}

TEST_F(PartitionerTest, SecondaryIndexCoversAllObjectsSorted) {
  EXPECT_EQ(catalog_.index.size(), objects_.size());
  for (std::size_t i = 1; i < catalog_.index.size(); ++i) {
    EXPECT_LT(catalog_.index[i - 1].objectId, catalog_.index[i].objectId);
  }
  for (const auto& e : catalog_.index) {
    EXPECT_TRUE(chunker_.isValidChunk(e.chunkId));
    EXPECT_TRUE(chunker_.isValidSubChunk(e.chunkId, e.subChunkId));
  }
}

TEST_F(PartitionerTest, ChunksSortedAndNonEmpty) {
  for (std::size_t i = 0; i < catalog_.chunks.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(catalog_.chunks[i - 1].chunkId, catalog_.chunks[i].chunkId);
    }
    EXPECT_GT(catalog_.chunks[i].objects->numRows() +
                  catalog_.chunks[i].objectOverlap->numRows() +
                  catalog_.chunks[i].sources->numRows(),
              0u);
  }
}

TEST_F(PartitionerTest, LoadIntoDatabaseCreatesIndexedTables) {
  sql::Database db;
  const ChunkData& chunk = catalog_.chunks.front();
  ASSERT_TRUE(loadChunkIntoDatabase(db, chunk).isOk());
  EXPECT_TRUE(db.hasTable(chunkTableName("Object", chunk.chunkId)));
  EXPECT_TRUE(db.hasTable(overlapTableName("Object", chunk.chunkId)));
  EXPECT_TRUE(db.hasTable(chunkTableName("Source", chunk.chunkId)));
  EXPECT_TRUE(db.findIndex(chunkTableName("Object", chunk.chunkId), "objectId"));
  // Point query through the index works.
  std::int64_t someId = chunk.objects->cell(0, kObjObjectId).asInt();
  sql::ExecStats stats;
  auto r = db.execute("SELECT * FROM " +
                          chunkTableName("Object", chunk.chunkId) +
                          " WHERE objectId = " + std::to_string(someId),
                      &stats);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ((*r)->numRows(), 1u);
  EXPECT_EQ(stats.indexLookups, 1u);
}

TEST_F(PartitionerTest, OrphanSourcesAreDropped) {
  std::vector<SourceRow> orphans = {SourceRow{999999, 888888, 1, 1, 1, 0.1, 50000}};
  auto r = partitionCatalog(chunker_, objects_, orphans);
  ASSERT_TRUE(r.isOk());
  std::size_t total = 0;
  for (const auto& chunk : r->chunks) total += chunk.sources->numRows();
  EXPECT_EQ(total, 0u);
}

TEST(PartitionerEdge, DuplicatorSpillRowsAreDropped) {
  sphgeom::Chunker chunker(10, 3);
  ObjectRow above;
  above.objectId = 1;
  above.ra = 10;
  above.decl = 91.0;  // top-band spill
  ObjectRow ok;
  ok.objectId = 2;
  ok.ra = 10;
  ok.decl = 45.0;
  std::vector<ObjectRow> objs = {above, ok};
  auto r = partitionCatalog(chunker, objs, {});
  ASSERT_TRUE(r.isOk());
  std::size_t total = 0;
  for (const auto& chunk : r->chunks) total += chunk.objects->numRows();
  EXPECT_EQ(total, 1u);
}

TEST(PartitionerNames, TableNameFormats) {
  EXPECT_EQ(chunkTableName("Object", 1234), "Object_1234");
  EXPECT_EQ(overlapTableName("Object", 1234), "ObjectOverlap_1234");
  EXPECT_EQ(subChunkTableName("Object", 1234, 5), "Object_1234_5");
}

}  // namespace
}  // namespace qserv::datagen
