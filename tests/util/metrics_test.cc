#include "util/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

namespace qserv::util {
namespace {

// Tests use their own registry instances (not MetricsRegistry::instance())
// so parallel test shards and the instrumented production code never skew
// each other's counts.

TEST(Metrics, CounterGaugeBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same instrument.
  EXPECT_EQ(&reg.counter("test.counter"), &c);

  Gauge& g = reg.gauge("test.gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Metrics, HistogramSnapshotStats) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.hist");
  for (int i = 1; i <= 100; ++i) h.observe(i);
  auto s = h.snapshot();
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);  // interpolated between ranks 50 and 51
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  EXPECT_NEAR(s.sum, 5050.0, 1e-6);
}

TEST(Metrics, EmptyHistogramSnapshotIsZero) {
  MetricsRegistry reg;
  auto s = reg.histogram("test.empty").snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Metrics, ConcurrentIncrementsLoseNoUpdates) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter& c = reg.counter("test.concurrent");
  Gauge& g = reg.gauge("test.concurrent_gauge");
  Histogram& h = reg.histogram("test.concurrent_hist");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        g.add(1);
        h.observe(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(g.value(), kThreads * kPerThread);
  EXPECT_EQ(h.snapshot().count, kThreads * kPerThread);
}

TEST(Metrics, SnapshotConsistentWhileHammered) {
  // Readers snapshotting mid-flight must see internally consistent
  // histograms (no torn stats) and monotonically growing counters.
  MetricsRegistry reg;
  Counter& c = reg.counter("test.hammered");
  Histogram& h = reg.histogram("test.hammered_hist");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
        h.observe(2.5);
      }
    });
  }
  std::uint64_t lastCount = 0;
  for (int i = 0; i < 200; ++i) {
    auto snap = reg.snapshot();
    std::uint64_t count = snap.counters.at("test.hammered");
    EXPECT_GE(count, lastCount);
    lastCount = count;
    const auto& hs = snap.histograms.at("test.hammered_hist");
    if (hs.count > 0) {
      // All observations are 2.5: every derived stat must agree.
      EXPECT_DOUBLE_EQ(hs.min, 2.5);
      EXPECT_DOUBLE_EQ(hs.max, 2.5);
      EXPECT_DOUBLE_EQ(hs.mean, 2.5);
      EXPECT_DOUBLE_EQ(hs.p50, 2.5);
    }
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

TEST(Metrics, ConcurrentInstrumentCreation) {
  // First-use creation of the same names from many threads must yield one
  // instrument per name and no lost increments.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.counter("test.created").add();
        reg.histogram("test.created_hist").observe(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("test.created").value(), 8000u);
  EXPECT_EQ(reg.histogram("test.created_hist").snapshot().count, 8000);
}

TEST(Metrics, TextAndJsonExport) {
  MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.level").set(-2);
  reg.histogram("c.lat").observe(0.5);
  auto snap = reg.snapshot();

  std::string text = snap.toText();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("3"), std::string::npos);
  EXPECT_NE(text.find("b.level"), std::string::npos);

  std::string json = snap.toJson();
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"b.level\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"c.lat\":{\"count\":1"), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Metrics, ResetZeroesEverythingButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("r.count");
  c.add(7);
  reg.histogram("r.hist").observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.histogram("r.hist").snapshot().count, 0);
  c.add();  // handle still valid
  EXPECT_EQ(reg.counter("r.count").value(), 1u);
}

TEST(Metrics, ProcessWideInstanceIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::instance(), &MetricsRegistry::instance());
}

TEST(Metrics, SnapshotP95AndCumulativeBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.hist");
  for (int i = 1; i <= 100; ++i) h.observe(i);
  auto s = h.snapshot();
  EXPECT_NEAR(s.p95, 95.05, 1e-9);  // interpolated like p50/p90/p99

  const auto& bounds = Histogram::bucketBounds();
  ASSERT_EQ(s.cumulative.size(), bounds.size());
  // Cumulative counts are monotone and, with every observation within the
  // bucketed range, the last entry covers all of them.
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_GE(s.cumulative[i], prev);
    prev = s.cumulative[i];
    // Spot-check against the exact definition: observations <= bound.
    std::int64_t expected = 0;
    for (int v = 1; v <= 100; ++v) {
      if (v <= bounds[i]) ++expected;
    }
    EXPECT_EQ(s.cumulative[i], expected) << "bound " << bounds[i];
  }
  EXPECT_EQ(s.cumulative.back(), s.count);

  // Observations beyond the last bound live only in the implicit +Inf
  // bucket: cumulative stays short of count.
  Histogram& big = reg.histogram("t.big");
  big.observe(bounds.back() * 10.0);
  auto sb = big.snapshot();
  EXPECT_EQ(sb.count, 1);
  EXPECT_EQ(sb.cumulative.back(), 0);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("czar.queries").add(5);
  reg.gauge("worker.w0.queue_depth").set(3);
  Histogram& h = reg.histogram("worker.w0.queue_wait_seconds");
  h.observe(0.004);
  h.observe(0.04);
  h.observe(400.0);
  std::string prom = reg.snapshot().toPrometheus();

  // Dotted names sanitize to qserv_* with underscores.
  EXPECT_NE(prom.find("# TYPE qserv_czar_queries counter"), std::string::npos);
  EXPECT_NE(prom.find("qserv_czar_queries 5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE qserv_worker_w0_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("qserv_worker_w0_queue_depth 3"), std::string::npos);

  // Histogram: cumulative le buckets, +Inf, _sum, _count.
  const std::string hname = "qserv_worker_w0_queue_wait_seconds";
  EXPECT_NE(prom.find("# TYPE " + hname + " histogram"), std::string::npos);
  EXPECT_NE(prom.find(hname + "_bucket{le=\"0.005\"} 1"), std::string::npos);
  EXPECT_NE(prom.find(hname + "_bucket{le=\"0.05\"} 2"), std::string::npos);
  EXPECT_NE(prom.find(hname + "_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(prom.find(hname + "_count 3"), std::string::npos);
  EXPECT_NE(prom.find(hname + "_sum"), std::string::npos);

  // Every finite bound appears on every scrape (a stable series set), even
  // past the last observation: one line per bound plus +Inf.
  std::size_t bucketLines = 0;
  const std::string bucketPrefix = hname + "_bucket{";
  for (std::size_t pos = 0;
       (pos = prom.find(bucketPrefix, pos)) != std::string::npos;
       pos += bucketPrefix.size()) {
    ++bucketLines;
  }
  EXPECT_EQ(bucketLines, Histogram::bucketBounds().size() + 1);
  EXPECT_NE(prom.find(hname + "_bucket{le=\"5e+08\"} 3"), std::string::npos);

  // Companion quantile summary, with the _sum/_count samples a summary
  // family must carry.
  EXPECT_NE(prom.find("# TYPE " + hname + "_quantiles summary"),
            std::string::npos);
  EXPECT_NE(prom.find(hname + "_quantiles{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(prom.find(hname + "_quantiles_sum"), std::string::npos);
  EXPECT_NE(prom.find(hname + "_quantiles_count 3"), std::string::npos);

  // An empty histogram still exposes the full zeroed bucket series.
  MetricsRegistry reg2;
  (void)reg2.histogram("empty.hist");
  std::string prom2 = reg2.snapshot().toPrometheus();
  EXPECT_NE(prom2.find("qserv_empty_hist_bucket{le=\"1e-06\"} 0"),
            std::string::npos);
  EXPECT_NE(prom2.find("qserv_empty_hist_bucket{le=\"+Inf\"} 0"),
            std::string::npos);

  // Exposition format: every non-comment line is `name[{labels}] value`.
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
    EXPECT_EQ(line.find_first_not_of(
                  "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
                  "0123456789_:"),
              line.find_first_of("{ "))
        << line;
  }
}

TEST(Metrics, JsonEscapesNamesAndNonFiniteValues) {
  MetricsRegistry reg;
  reg.counter("weird\"name\\with\nstuff").add(1);
  Histogram& h = reg.histogram("inf.hist");
  h.observe(std::numeric_limits<double>::infinity());
  std::string json = reg.snapshot().toJson();

  // Raw quote/backslash/newline in the instrument name must be escaped.
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nstuff"), std::string::npos);
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control char";
  }
  // Non-finite stats render as null, never bare inf/nan (invalid JSON).
  EXPECT_EQ(json.find("inf,"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Metrics, ResetRacesObserversSafely) {
  // reset() may interleave with observe()/add() from other threads without
  // data races (exercised under TSan) or broken invariants after the dust
  // settles.
  MetricsRegistry reg;
  Counter& c = reg.counter("race.count");
  Gauge& g = reg.gauge("race.gauge");
  Histogram& h = reg.histogram("race.hist");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
        g.add(1);
        h.observe(0.5);
      }
    });
  }
  for (int i = 0; i < 100; ++i) {
    reg.reset();
    auto s = h.snapshot();
    // Snapshot invariants hold mid-race: a non-empty snapshot has fully
    // sized cumulative buckets that never exceed its count.
    if (s.count > 0) {
      ASSERT_EQ(s.cumulative.size(), Histogram::bucketBounds().size());
      EXPECT_LE(s.cumulative.back(), s.count);
    }
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0);
}

}  // namespace
}  // namespace qserv::util
