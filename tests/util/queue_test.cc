#include "util/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace qserv::util {
namespace {

TEST(MpmcQueue, PushPopFifoOrder) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(MpmcQueue, TryPopEmptyReturnsNullopt) {
  MpmcQueue<int> q;
  EXPECT_FALSE(q.tryPop().has_value());
}

TEST(MpmcQueue, BoundedTryPushFailsWhenFull) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.tryPush(1));
  EXPECT_TRUE(q.tryPush(2));
  EXPECT_FALSE(q.tryPush(3));
  q.pop();
  EXPECT_TRUE(q.tryPush(3));
}

TEST(MpmcQueue, CloseUnblocksConsumers) {
  MpmcQueue<int> q;
  std::thread consumer([&] {
    auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  q.close();
  consumer.join();
}

TEST(MpmcQueue, CloseDrainsRemainingItems) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, ConcurrentProducersConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  MpmcQueue<int> q(64);
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  long long n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(MpmcQueue, SizeReflectsContents) {
  MpmcQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace qserv::util
