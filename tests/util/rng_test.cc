#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

#include "util/stats.h"

namespace qserv::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    double x = r.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double x = r.uniform(358.0, 365.0);
    ASSERT_GE(x, 358.0);
    ASSERT_LT(x, 365.0);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, RangeInclusive) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = r.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t st = 0;
  std::uint64_t v1 = splitmix64(st);
  std::uint64_t v2 = splitmix64(st);
  EXPECT_NE(v1, v2);
  // Regression pin: these values must never change, or every dataset in
  // EXPERIMENTS.md silently changes.
  std::uint64_t st2 = 0;
  EXPECT_EQ(splitmix64(st2), v1);
  EXPECT_EQ(splitmix64(st2), v2);
}

}  // namespace
}  // namespace qserv::util
