#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace qserv::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.numThreads(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { done.fetch_add(1); });
    }
    pool.shutdown();
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ParallelTasksActuallyOverlap) {
  // With 4 threads, 4 tasks that wait on a shared barrier can only finish
  // if they run concurrently.
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 4; ++i) {
    futs.push_back(pool.submit([&] {
      arrived.fetch_add(1);
      while (arrived.load() < 4) std::this_thread::yield();
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(arrived.load(), 4);
}

}  // namespace
}  // namespace qserv::util
