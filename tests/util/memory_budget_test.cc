#include "util/memory_budget.h"

#include <gtest/gtest.h>

namespace qserv::util {
namespace {

TEST(MemoryBudget, UnlimitedCapacityAlwaysLocks) {
  MemoryBudget budget;  // capacity 0 = unlimited
  EXPECT_TRUE(budget.tryLock("a", 1e12));
  EXPECT_TRUE(budget.tryLock("b", 1e12));
  EXPECT_DOUBLE_EQ(budget.lockedBytes(), 2e12);
}

TEST(MemoryBudget, CapacityBlocksSecondSet) {
  MemoryBudget budget(100.0);
  EXPECT_TRUE(budget.tryLock("a", 80.0));
  EXPECT_FALSE(budget.tryLock("b", 30.0));
  // A set that still fits is admitted alongside.
  EXPECT_TRUE(budget.tryLock("c", 20.0));
  EXPECT_DOUBLE_EQ(budget.lockedBytes(), 100.0);
  budget.unlock("a");
  EXPECT_TRUE(budget.tryLock("b", 30.0));
}

TEST(MemoryBudget, RelockingSameKeyIsFree) {
  MemoryBudget budget(100.0);
  EXPECT_TRUE(budget.tryLock("chunk:7", 90.0));
  // The bytes are already resident: co-scheduled scans of the same chunk
  // share one charge, regardless of capacity headroom.
  EXPECT_TRUE(budget.tryLock("chunk:7", 90.0));
  EXPECT_DOUBLE_EQ(budget.lockedBytes(), 90.0);
  EXPECT_EQ(budget.lockedSets(), 1u);
}

TEST(MemoryBudget, UnlockIsRefcounted) {
  MemoryBudget budget(100.0);
  ASSERT_TRUE(budget.tryLock("a", 60.0));
  ASSERT_TRUE(budget.tryLock("a", 60.0));
  budget.unlock("a");
  // One holder remains: the charge stays and blocks a conflicting set.
  EXPECT_DOUBLE_EQ(budget.lockedBytes(), 60.0);
  EXPECT_FALSE(budget.tryLock("b", 60.0));
  budget.unlock("a");
  EXPECT_DOUBLE_EQ(budget.lockedBytes(), 0.0);
  EXPECT_TRUE(budget.tryLock("b", 60.0));
}

TEST(MemoryBudget, SingleOversizeSetProceeds) {
  MemoryBudget budget(100.0);
  // Anti-starvation: a scan bigger than the whole budget must not wedge the
  // worker when nothing else holds memory.
  EXPECT_TRUE(budget.tryLock("huge", 500.0));
  EXPECT_FALSE(budget.tryLock("b", 1.0));
  budget.unlock("huge");
  EXPECT_TRUE(budget.tryLock("b", 1.0));
}

TEST(MemoryBudget, UnlockUnknownKeyIsNoop) {
  MemoryBudget budget(100.0);
  budget.unlock("never-locked");
  EXPECT_DOUBLE_EQ(budget.lockedBytes(), 0.0);
  EXPECT_EQ(budget.lockedSets(), 0u);
}

}  // namespace
}  // namespace qserv::util
