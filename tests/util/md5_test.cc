#include "util/md5.h"

#include <gtest/gtest.h>

#include <string>

namespace qserv::util {
namespace {

// RFC 1321 appendix A.5 test vectors.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::hex("1234567890123456789012345678901234567890"
                     "1234567890123456789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  std::string data(1000, 'q');
  Md5 h;
  for (int i = 0; i < 10; ++i) h.update(std::string_view(data).substr(i * 100, 100));
  auto d = h.digest();
  EXPECT_EQ(toHex(d.data(), d.size()), Md5::hex(data));
}

TEST(Md5, SplitAcrossBlockBoundaries) {
  std::string data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<char>(i & 0x7f));
  for (std::size_t cut : {1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    Md5 h;
    h.update(std::string_view(data).substr(0, cut));
    h.update(std::string_view(data).substr(cut));
    auto d = h.digest();
    EXPECT_EQ(toHex(d.data(), d.size()), Md5::hex(data)) << "cut=" << cut;
  }
}

TEST(Md5, HexIs32LowercaseDigits) {
  // Paper §5.4: result paths embed "the MD5 hash, represented via 32
  // hexadecimal digits in ASCII".
  std::string h = Md5::hex("SELECT COUNT(*) FROM Object_1234;");
  ASSERT_EQ(h.size(), 32u);
  for (char c : h) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(Md5, DistinctInputsDistinctDigests) {
  EXPECT_NE(Md5::hex("SELECT 1"), Md5::hex("SELECT 2"));
}

TEST(Md5, ToHexEncodesBytes) {
  std::uint8_t bytes[] = {0x00, 0x0f, 0xf0, 0xff};
  EXPECT_EQ(toHex(bytes, 4), "000ff0ff");
}

}  // namespace
}  // namespace qserv::util
