#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qserv::util {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, EmptyIsSane) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentiles, MedianAndExtremes) {
  Percentiles p;
  for (int i = 1; i <= 101; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(50), 51.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 101.0);
}

TEST(Percentiles, InterpolatesBetweenSamples) {
  Percentiles p;
  p.add(10.0);
  p.add(20.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(p.percentile(25), 12.5);
}

TEST(Percentiles, EmptyReturnsNan) {
  Percentiles p;
  EXPECT_TRUE(std::isnan(p.percentile(50)));
}

TEST(Percentiles, AddAfterQuerySeesNewSamples) {
  Percentiles p;
  p.add(3.0);
  p.add(1.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 3.0);
  // A later add must invalidate the lazy sort: both new extremes and
  // mid-range values land in the right rank on the next query.
  p.add(0.5);
  EXPECT_DOUBLE_EQ(p.percentile(0), 0.5);
  EXPECT_DOUBLE_EQ(p.percentile(50), 1.0);
  p.add(9.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 9.0);
}

TEST(Percentiles, QueryThroughConstReference) {
  // Snapshot paths (metrics histograms) query through const& — the lazy
  // sort must still work.
  Percentiles p;
  p.add(2.0);
  p.add(1.0);
  const Percentiles& cp = p;
  EXPECT_DOUBLE_EQ(cp.percentile(50), 1.5);
  EXPECT_EQ(cp.size(), 2u);
}

TEST(Percentiles, ClampsOutOfRangeP) {
  Percentiles p;
  p.add(1.0);
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(200), 2.0);
}

}  // namespace
}  // namespace qserv::util
