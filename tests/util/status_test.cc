#include "util/status.h"

#include <gtest/gtest.h>

namespace qserv::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.isOk());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.toString(), "OK");
}

TEST(Status, FactoryFunctionsCarryCodeAndMessage) {
  Status s = Status::notFound("chunk 42");
  EXPECT_FALSE(s.isOk());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "chunk 42");
  EXPECT_EQ(s.toString(), "NOT_FOUND: chunk 42");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::ok(), Status());
  EXPECT_EQ(Status::internal("x"), Status::internal("x"));
  EXPECT_FALSE(Status::internal("x") == Status::internal("y"));
  EXPECT_FALSE(Status::internal("x") == Status::aborted("x"));
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kAborted); ++c) {
    EXPECT_STRNE(errorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().isOk());
  EXPECT_EQ(r.valueOr(0), 7);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::unavailable("worker down");
  ASSERT_FALSE(r.isOk());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(r.valueOr(-1), -1);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.isOk());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

Status failIfNegative(int x) {
  if (x < 0) return Status::invalidArgument("negative");
  return Status::ok();
}

Status chain(int x) {
  QSERV_RETURN_IF_ERROR(failIfNegative(x));
  return Status::ok();
}

TEST(Result, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(chain(1).isOk());
  EXPECT_EQ(chain(-1).code(), ErrorCode::kInvalidArgument);
}

Result<int> half(int x) {
  if (x % 2 != 0) return Status::invalidArgument("odd");
  return x / 2;
}

Result<int> quarter(int x) {
  QSERV_ASSIGN_OR_RETURN(int h, half(x));
  QSERV_ASSIGN_OR_RETURN(int q, half(h));
  return q;
}

TEST(Result, AssignOrReturnMacro) {
  auto r = quarter(8);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ(*r, 2);
  EXPECT_EQ(quarter(6).status().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace qserv::util
