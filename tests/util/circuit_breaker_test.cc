#include <gtest/gtest.h>

#include "util/circuit_breaker.h"

namespace qserv::util {
namespace {

using State = CircuitBreaker::State;
using Clock = CircuitBreaker::Clock;

CircuitBreakerPolicy testPolicy() {
  CircuitBreakerPolicy p;
  p.windowSize = 8;
  p.minSamples = 4;
  p.openErrorRate = 0.5;
  p.openDuration = std::chrono::milliseconds(100);
  p.halfOpenProbes = 1;
  return p;
}

TEST(CircuitBreaker, StaysClosedOnSuccesses) {
  CircuitBreaker b(testPolicy());
  auto t = Clock::now();
  for (int i = 0; i < 20; ++i) b.recordSuccess(t);
  EXPECT_EQ(b.state(), State::kClosed);
  EXPECT_TRUE(b.allowRequest(t));
}

TEST(CircuitBreaker, DoesNotJudgeBeforeMinSamples) {
  CircuitBreaker b(testPolicy());
  auto t = Clock::now();
  b.recordFailure(t);
  b.recordFailure(t);
  b.recordFailure(t);
  EXPECT_EQ(b.state(), State::kClosed);
}

TEST(CircuitBreaker, OpensAtErrorRateThreshold) {
  CircuitBreaker b(testPolicy());
  auto t = Clock::now();
  b.recordSuccess(t);
  b.recordSuccess(t);
  b.recordFailure(t);
  b.recordFailure(t);  // 2/4 = 50% >= threshold with minSamples reached
  EXPECT_EQ(b.state(), State::kOpen);
  EXPECT_FALSE(b.allowRequest(t));
}

TEST(CircuitBreaker, HalfOpensAfterCooldownAndLimitsProbes) {
  auto policy = testPolicy();
  CircuitBreaker b(policy);
  auto t = Clock::now();
  for (int i = 0; i < 4; ++i) b.recordFailure(t);
  ASSERT_EQ(b.state(), State::kOpen);
  EXPECT_FALSE(b.allowRequest(t + std::chrono::milliseconds(50)));
  // Past the cooldown: exactly one probe passes.
  auto later = t + policy.openDuration + std::chrono::milliseconds(1);
  EXPECT_TRUE(b.allowRequest(later));
  EXPECT_EQ(b.state(), State::kHalfOpen);
  EXPECT_FALSE(b.allowRequest(later));  // probe slot taken
}

TEST(CircuitBreaker, ProbeSuccessCloses) {
  auto policy = testPolicy();
  CircuitBreaker b(policy);
  auto t = Clock::now();
  for (int i = 0; i < 4; ++i) b.recordFailure(t);
  auto later = t + policy.openDuration + std::chrono::milliseconds(1);
  ASSERT_TRUE(b.allowRequest(later));
  b.recordSuccess(later);
  EXPECT_EQ(b.state(), State::kClosed);
  // The sick window was forgotten: one new failure doesn't reopen.
  b.recordFailure(later);
  EXPECT_EQ(b.state(), State::kClosed);
}

TEST(CircuitBreaker, ProbeFailureReopens) {
  auto policy = testPolicy();
  CircuitBreaker b(policy);
  auto t = Clock::now();
  for (int i = 0; i < 4; ++i) b.recordFailure(t);
  auto later = t + policy.openDuration + std::chrono::milliseconds(1);
  ASSERT_TRUE(b.allowRequest(later));
  b.recordFailure(later);
  EXPECT_EQ(b.state(), State::kOpen);
  // The cooldown restarts from the probe failure.
  EXPECT_FALSE(b.allowRequest(later + std::chrono::milliseconds(50)));
  EXPECT_TRUE(
      b.allowRequest(later + policy.openDuration + std::chrono::milliseconds(1)));
}

TEST(CircuitBreaker, SlidingWindowForgetsOldFailures) {
  auto policy = testPolicy();
  CircuitBreaker b(policy);
  auto t = Clock::now();
  // An early failure followed by a healthy run falls out of the 8-slot
  // window; later isolated failures then see a clean window and stay under
  // the 50% threshold.
  b.recordFailure(t);
  for (int i = 0; i < 8; ++i) b.recordSuccess(t);
  for (int i = 0; i < 3; ++i) b.recordFailure(t);  // 3/8 = 37.5%
  EXPECT_EQ(b.state(), State::kClosed);
}

}  // namespace
}  // namespace qserv::util
