#include "util/strings.h"

#include <gtest/gtest.h>

namespace qserv::util {
namespace {

TEST(Strings, SplitBasic) {
  auto v = split("a,b,c", ',');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto v = split(",a,,b,", ',');
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], "");
  EXPECT_EQ(v[2], "");
  EXPECT_EQ(v[4], "");
}

TEST(Strings, SplitSingleField) {
  auto v = split("alone", ',');
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "alone");
}

TEST(Strings, SplitEmptyString) {
  auto v = split("", ',');
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\na b\r "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("nochange"), "nochange");
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(toLower("SELECT CoUnT(*)"), "select count(*)");
  EXPECT_EQ(toUpper("Object_12"), "OBJECT_12");
}

TEST(Strings, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("SELECT", "select"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("SELECT", "SELEC"));
  EXPECT_FALSE(iequals("a", "b"));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(startsWith("/query2/123", "/query2/"));
  EXPECT_FALSE(startsWith("/result/ab", "/query2/"));
  EXPECT_TRUE(endsWith("Object_12_3", "_3"));
  EXPECT_FALSE(endsWith("x", "xy"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("chunk %d of %d", 3, 10), "chunk 3 of 10");
  EXPECT_EQ(format("%.2f", 1.2345), "1.23");
  EXPECT_EQ(format("%s", ""), "");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(humanBytes(512), "512.00 B");
  EXPECT_EQ(humanBytes(1.824e12), "1.82 TB");
  EXPECT_EQ(humanBytes(30e12), "30.00 TB");
}

}  // namespace
}  // namespace qserv::util
