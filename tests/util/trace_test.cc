#include "util/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <thread>
#include <vector>

namespace qserv::util {
namespace {

TEST(Trace, ScopedSpanRecordsOnEnd) {
  auto trace = std::make_shared<Trace>(7, "SELECT 1");
  {
    ScopedSpan span(trace, "czar", "parse");
    span.attr("chunks", std::int64_t{42}).attr("mode", "full");
    EXPECT_EQ(trace->spanCount(), 0u);  // not recorded until end
  }
  ASSERT_EQ(trace->spanCount(), 1u);
  auto spans = trace->spans();
  EXPECT_EQ(spans[0].component, "czar");
  EXPECT_EQ(spans[0].name, "parse");
  EXPECT_GE(spans[0].endUs, spans[0].startUs);
  ASSERT_EQ(spans[0].attrs.size(), 2u);
  EXPECT_EQ(spans[0].attrs[0].first, "chunks");
  EXPECT_EQ(spans[0].attrs[0].second, "42");
  EXPECT_EQ(spans[0].attrs[1].second, "full");
}

TEST(Trace, ExplicitEndIsIdempotent) {
  auto trace = std::make_shared<Trace>(1, "q");
  ScopedSpan span(trace, "worker", "exec");
  span.end();
  span.end();  // destructor will also call end()
  EXPECT_EQ(trace->spanCount(), 1u);
}

TEST(Trace, NullTraceIsNoOp) {
  ScopedSpan span(nullptr, "czar", "parse");
  span.attr("k", "v").attr("n", std::int64_t{1});
  span.end();  // must not crash
}

TEST(Trace, NestedSpansCoverChildWindows) {
  auto trace = std::make_shared<Trace>(2, "nested");
  {
    ScopedSpan outer(trace, "czar", "dispatch");
    {
      ScopedSpan inner(trace, "dispatcher", "chunk 11");
      ScopedSpan innermost(trace, "xrd", "write /query2/11");
    }
  }
  auto spans = trace->spans();  // completion order: innermost first
  ASSERT_EQ(spans.size(), 3u);
  const TraceSpan& innermost = spans[0];
  const TraceSpan& inner = spans[1];
  const TraceSpan& outer = spans[2];
  EXPECT_EQ(outer.component, "czar");
  EXPECT_EQ(inner.component, "dispatcher");
  // A child span's window nests inside its parent's.
  EXPECT_LE(outer.startUs, inner.startUs);
  EXPECT_GE(outer.endUs, inner.endUs);
  EXPECT_LE(inner.startUs, innermost.startUs);
  EXPECT_GE(inner.endUs, innermost.endUs);
  auto components = trace->components();
  ASSERT_EQ(components.size(), 3u);  // sorted distinct
  EXPECT_EQ(components[0], "czar");
  EXPECT_EQ(components[1], "dispatcher");
  EXPECT_EQ(components[2], "xrd");
}

TEST(Trace, ConcurrentSpanRecording) {
  auto trace = std::make_shared<Trace>(3, "mt");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span(trace, "worker", "exec");
        span.attr("i", static_cast<std::int64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(trace->spanCount(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(Trace, ChromeJsonExport) {
  auto trace = std::make_shared<Trace>(9, "SELECT \"x\" FROM t");
  {
    ScopedSpan a(trace, "czar", "parse");
  }
  {
    ScopedSpan b(trace, "worker", "exec 1234");
    b.attr("worker", std::int64_t{3});
  }
  std::string json = trace->toChromeJson();
  // Chrome trace_event envelope.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"worker\""), std::string::npos);
  EXPECT_NE(json.find("\"worker\":\"3\""), std::string::npos);
  EXPECT_NE(json.find("\"traceId\":9"), std::string::npos);
  // The query label is escaped, not emitted raw.
  EXPECT_NE(json.find("SELECT \\\"x\\\" FROM t"), std::string::npos);
  // Balanced structure (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Trace, RegistryCreateFindRelease) {
  auto& reg = TraceRegistry::instance();
  std::size_t before = reg.size();
  TracePtr trace = reg.create("registry test");
  EXPECT_EQ(reg.size(), before + 1);
  EXPECT_GT(trace->id(), 0u);
  EXPECT_EQ(reg.find(trace->id()), trace);

  // Ids are process-unique, never reused.
  TracePtr other = reg.create("another");
  EXPECT_NE(other->id(), trace->id());

  reg.release(trace->id());
  reg.release(other->id());
  EXPECT_EQ(reg.size(), before);
  EXPECT_EQ(reg.find(trace->id()), nullptr);
  // The released trace lives on for its owners.
  EXPECT_EQ(trace->label(), "registry test");
}

TEST(Trace, HeaderRoundTrip) {
  std::string header = traceHeaderLine(123456789);
  EXPECT_EQ(header, "-- QSERV-TRACE: 123456789\n");
  auto id = parseTraceHeader(header + "SELECT * FROM Object_1234;");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 123456789u);
}

TEST(Trace, HeaderParsingScansAllLeadingComments) {
  // The trace header may come before or after other comment headers
  // (e.g. -- SUBCHUNKS:); both orders must parse.
  std::string afterSubchunks =
      "-- SUBCHUNKS: 1,2,3\n-- QSERV-TRACE: 42\nSELECT 1;";
  auto id = parseTraceHeader(afterSubchunks);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 42u);

  std::string beforeSubchunks =
      "-- QSERV-TRACE: 42\n-- SUBCHUNKS: 1,2,3\nSELECT 1;";
  id = parseTraceHeader(beforeSubchunks);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 42u);
}

TEST(Trace, HeaderParsingRejectsNonHeaders) {
  EXPECT_FALSE(parseTraceHeader("SELECT 1;").has_value());
  // Comments stop at the first non-comment line: a trace marker inside the
  // SQL body (e.g. a string literal) is not a header.
  EXPECT_FALSE(
      parseTraceHeader("SELECT 1;\n-- QSERV-TRACE: 7\n").has_value());
  EXPECT_FALSE(parseTraceHeader("-- QSERV-TRACE: nope\nSELECT 1;").has_value());
  EXPECT_FALSE(parseTraceHeader("").has_value());
  EXPECT_FALSE(parseTraceHeader("-- QSERV-TRACE: ").has_value());
}

TEST(Trace, HeaderParsingRejectsGarbageAndOverflow) {
  // Mixed digits and letters anywhere in the id reject the whole header.
  EXPECT_FALSE(parseTraceHeader("-- QSERV-TRACE: 12x4\nSELECT 1;").has_value());
  EXPECT_FALSE(parseTraceHeader("-- QSERV-TRACE: -7\nSELECT 1;").has_value());
  EXPECT_FALSE(parseTraceHeader("-- QSERV-TRACE: 1 2\nSELECT 1;").has_value());

  // uint64 max parses; one more (and anything longer) must not wrap around
  // to a small id that would attach spans to an unrelated query.
  auto max = parseTraceHeader("-- QSERV-TRACE: 18446744073709551615\nSELECT 1;");
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(*max, std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(
      parseTraceHeader("-- QSERV-TRACE: 18446744073709551616\nSELECT 1;")
          .has_value());
  EXPECT_FALSE(
      parseTraceHeader("-- QSERV-TRACE: 99999999999999999999\nSELECT 1;")
          .has_value());
}

TEST(Trace, HeaderParsingFirstDuplicateWins) {
  auto id = parseTraceHeader(
      "-- QSERV-TRACE: 11\n-- QSERV-TRACE: 22\nSELECT 1;");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 11u);
}

TEST(Trace, ChromeJsonEscapesControlCharacters) {
  auto trace = std::make_shared<Trace>(10, "label with \"quotes\"\\\n\ttab");
  {
    ScopedSpan s(trace, "czar", "name\nwith\x01控");
    s.attr("key\"x", "val\\ue\n");
  }
  std::string json = trace->toChromeJson();
  // No raw control characters may survive into the JSON output.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control char in JSON";
  }
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, ClockIsMonotonic) {
  std::int64_t a = Trace::nowUs();
  std::int64_t b = Trace::nowUs();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace qserv::util
