#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/backoff.h"
#include "util/deadline.h"

namespace qserv::util {
namespace {

TEST(Backoff, FirstSleepIsBaseExactly) {
  BackoffPolicy policy;
  Backoff b(policy, 42);
  EXPECT_EQ(b.next(), policy.base);
  EXPECT_EQ(b.attempts(), 1);
}

TEST(Backoff, SleepsStayWithinBaseAndCap) {
  BackoffPolicy policy;
  policy.base = std::chrono::microseconds(1'000);
  policy.cap = std::chrono::microseconds(20'000);
  policy.multiplier = 3.0;
  Backoff b(policy, 7);
  for (int i = 0; i < 100; ++i) {
    auto s = b.next();
    EXPECT_GE(s, policy.base) << "attempt " << i;
    // next() may draw above the cap once, but the *retained* state is capped,
    // so the window never grows past cap * multiplier.
    EXPECT_LE(s.count(), static_cast<std::int64_t>(
                             policy.cap.count() * policy.multiplier))
        << "attempt " << i;
  }
}

TEST(Backoff, DeterministicUnderSameSeed) {
  BackoffPolicy policy;
  Backoff a(policy, 123), b(policy, 123);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Backoff, DifferentSeedsDecorrelate) {
  BackoffPolicy policy;
  Backoff a(policy, 1), b(policy, 2);
  (void)a.next();  // both return base
  (void)b.next();
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Backoff, ResetRestartsSchedule) {
  BackoffPolicy policy;
  Backoff b(policy, 5);
  (void)b.next();
  (void)b.next();
  b.reset();
  EXPECT_EQ(b.attempts(), 0);
  EXPECT_EQ(b.next(), policy.base);
}

TEST(Deadline, UnlimitedNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.isLimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), std::chrono::microseconds::max());
}

TEST(Deadline, ExpiresAfterBudget) {
  auto d = Deadline::after(std::chrono::microseconds(1));
  EXPECT_TRUE(d.isLimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), std::chrono::microseconds(0));
}

TEST(Deadline, RemainingIsPositiveBeforeExpiry) {
  auto d = Deadline::afterSeconds(60.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), std::chrono::microseconds(0));
  EXPECT_LE(d.remaining(), std::chrono::microseconds(60'000'000));
}

TEST(CancelToken, CopiesShareState) {
  CancelToken a;
  CancelToken b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_FALSE(b.cancelled());
  a.cancel(Status::aborted("stop"));
  EXPECT_TRUE(b.cancelled());
  EXPECT_EQ(b.reason().code(), ErrorCode::kAborted);
}

TEST(CancelToken, FirstCancelWins) {
  CancelToken t;
  t.cancel(Status::unavailable("first"));
  t.cancel(Status::internal("second"));
  EXPECT_EQ(t.reason().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(t.reason().message(), "first");
}

TEST(CancelToken, SleepForRunsFullDurationWhenNotCancelled) {
  CancelToken t;
  EXPECT_TRUE(t.sleepFor(std::chrono::microseconds(100)));
}

TEST(CancelToken, SleepForWakesEarlyOnCancel) {
  CancelToken t;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    t.cancel(Status::aborted("wake up"));
  });
  auto start = std::chrono::steady_clock::now();
  bool full = t.sleepFor(std::chrono::seconds(30));
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(full);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  canceller.join();
}

TEST(CancelToken, SleepReturnsImmediatelyWhenAlreadyCancelled) {
  CancelToken t;
  t.cancel(Status::aborted("done"));
  EXPECT_FALSE(t.sleepFor(std::chrono::seconds(30)));
}

}  // namespace
}  // namespace qserv::util
