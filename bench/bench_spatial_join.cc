/// \file bench_spatial_join.cc
/// \brief Near-neighbor self-join: zone-based spatial join vs the streamed
/// nested loop (see sql/spatial_join.h and DESIGN.md "Zone-based spatial
/// join"). The workload is one SHV1-shaped subchunk:
///
///   SELECT COUNT(*) FROM Obj o1, Obj o2
///   WHERE qserv_angSep(o1.ra, o1.decl, o2.ra, o2.decl) < 0.01
///
/// over 4000 objects in a ~1 deg^2 patch — the per-subchunk unit of work
/// that the paper's near-neighbor query fans out across chunks (§5.2).
///
/// Run as part of the `perf-smoke` CTest target with QSERV_METRICS_JSON
/// set; the exit snapshot (BENCH_spatial_join.json) records the measured
/// speedup as a gauge. The process aborts if the two paths disagree on the
/// pair count, or if the zone path fails its >=5x speedup floor.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "sql/database.h"
#include "sql/spatial_join.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace qserv;

constexpr std::size_t kRows = 4000;

const char* kNearNeighbor =
    "SELECT COUNT(*) FROM Obj o1, Obj o2 "
    "WHERE qserv_angSep(o1.ra, o1.decl, o2.ra, o2.decl) < 0.01 "
    "AND o1.objectId < o2.objectId";

/// One subchunk worth of objects: 4000 positions in [30,31) x [10,11) deg,
/// ~2% NULL coordinates like real catalog edges.
sql::Database* joinDb() {
  static sql::Database* db = [] {
    auto* d = new sql::Database("bench_spatial_join");
    sql::Schema schema({{"objectId", sql::ColumnType::kInt},
                        {"ra", sql::ColumnType::kDouble},
                        {"decl", sql::ColumnType::kDouble}});
    auto table = std::make_shared<sql::Table>("Obj", schema);
    util::Rng rng(0x0b5e55ed);
    for (std::size_t i = 0; i < kRows; ++i) {
      std::vector<sql::Value> row;
      row.reserve(3);
      row.emplace_back(static_cast<std::int64_t>(i));
      if (rng.below(100) < 2) {
        row.emplace_back();  // NULL ra
        row.emplace_back(rng.uniform(10.0, 11.0));
      } else {
        row.emplace_back(rng.uniform(30.0, 31.0));
        row.emplace_back(rng.uniform(10.0, 11.0));
      }
      if (!table->appendRow(row).isOk()) std::abort();
    }
    if (!d->registerTable(std::move(table)).isOk()) std::abort();
    return d;
  }();
  return db;
}

std::int64_t runCount(sql::Database& db, const char* query,
                      sql::ExecStats* stats = nullptr) {
  auto r = db.execute(query, stats);
  if (!r.isOk()) {
    std::fprintf(stderr, "bench_spatial_join query failed: %s\n  for: %s\n",
                 r.status().toString().c_str(), query);
    std::abort();
  }
  return (*r)->cell(0, 0).asInt();
}

void benchJoin(benchmark::State& state, bool zoned) {
  sql::Database* db = joinDb();
  sql::setSpatialJoinEnabled(zoned);
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    sql::ExecStats stats;
    benchmark::DoNotOptimize(runCount(*db, kNearNeighbor, &stats));
    pairs += stats.pairsEvaluated;
  }
  sql::setSpatialJoinEnabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}

void BM_NestedLoopNearNeighbor4k(benchmark::State& s) { benchJoin(s, false); }
void BM_ZoneJoinNearNeighbor4k(benchmark::State& s) { benchJoin(s, true); }
BENCHMARK(BM_NestedLoopNearNeighbor4k)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ZoneJoinNearNeighbor4k)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------- acceptance gates

/// Both paths must produce the same pair count, the zone run must actually
/// take the zone path, and the window must prune the bulk of the 16M-pair
/// cross product.
void verifyParity() {
  sql::Database* db = joinDb();
  sql::ExecStats zoneStats;
  sql::setSpatialJoinEnabled(true);
  std::int64_t zoned = runCount(*db, kNearNeighbor, &zoneStats);
  sql::ExecStats loopStats;
  sql::setSpatialJoinEnabled(false);
  std::int64_t looped = runCount(*db, kNearNeighbor, &loopStats);
  sql::setSpatialJoinEnabled(true);
  if (zoned != looped) {
    std::fprintf(stderr, "PARITY FAILURE: zone=%lld nested=%lld\n",
                 static_cast<long long>(zoned),
                 static_cast<long long>(looped));
    std::abort();
  }
  if (zoneStats.spatialJoins != 1 || loopStats.spatialJoins != 0) {
    std::fprintf(stderr,
                 "PATH FAILURE: spatialJoins zone=%llu nested=%llu "
                 "(want 1/0)\n",
                 static_cast<unsigned long long>(zoneStats.spatialJoins),
                 static_cast<unsigned long long>(loopStats.spatialJoins));
    std::abort();
  }
  if (zoneStats.zoneJoinCandidates >= loopStats.pairsEvaluated / 10) {
    std::fprintf(stderr,
                 "PRUNING FAILURE: %llu candidates out of %llu pairs\n",
                 static_cast<unsigned long long>(zoneStats.zoneJoinCandidates),
                 static_cast<unsigned long long>(loopStats.pairsEvaluated));
    std::abort();
  }
  std::printf(
      "parity check: %lld pairs both paths; zones pruned %llu of %llu "
      "candidate pairs  [ok]\n",
      static_cast<long long>(zoned),
      static_cast<unsigned long long>(zoneStats.zoneJoinPairsPruned),
      static_cast<unsigned long long>(loopStats.pairsEvaluated));
}

double secondsPerExec(sql::Database& db, bool zoned, int iters) {
  sql::setSpatialJoinEnabled(zoned);
  (void)runCount(db, kNearNeighbor);  // warm up
  double best = 1e30;
  for (int i = 0; i < iters; ++i) {
    util::Stopwatch w;
    (void)runCount(db, kNearNeighbor);
    best = std::min(best, w.elapsedSeconds());
  }
  sql::setSpatialJoinEnabled(true);
  return best;
}

void reportSpeedup() {
  sql::Database* db = joinDb();
  double loopSec = secondsPerExec(*db, false, 7);
  double zoneSec = secondsPerExec(*db, true, 7);
  double speedup = loopSec / zoneSec;
  util::MetricsRegistry::instance()
      .gauge("bench.spatial_join.speedup_nearneighbor")
      .set(speedup);
  std::printf("---- zone join vs streamed nested loop (4k-row subchunk) ----\n");
  std::printf("  near-neighbor self-join  nested %8.3f ms   zone %8.3f ms   "
              "speedup %5.2fx\n",
              loopSec * 1e3, zoneSec * 1e3, speedup);
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "SPEEDUP FAILURE: near-neighbor zone join %.2fx < 5x\n",
                 speedup);
    std::abort();
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::emitMetricsSnapshotAtExit();
  verifyParity();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  reportSpeedup();
  benchmark::Shutdown();
  return 0;
}
