/// \file bench_hv3.cc
/// \brief Figure 7 — High Volume 3, density map:
///   SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId
///   FROM Object GROUP BY chunkId
/// Paper: "of similar complexity to High Volume 2, but measured times
/// significantly faster, which is probably due to reduced results
/// transmission time" — an aggregate ships one row per chunk instead of
/// filtered object rows. Fig 7 shows ~150-250 s (one ~250 s first run).
#include <cstdio>

#include "bench_util.h"
#include "util/stats.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Figure 7 — High Volume 3 (object density by chunk)",
              "§6.2 HV3, Fig 7: faster than HV2; ~4 min plausibly uncached",
              "same scan cost as HV2, far smaller results -> faster overall");

  PaperSetupOptions opts;
  opts.basePatchObjects = 900;
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  const std::string sql =
      "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId FROM Object "
      "GROUP BY chunkId";

  simio::CostParams cold = simio::CostParams::paper150();
  simio::CostParams warm = cold;
  warm.cacheFraction = 0.65;

  double vCold = 0, vWarm = 0;
  for (int run = 1; run <= 3; ++run) {
    bool isCold = (run == 1);
    printRunHeader(util::format("Run %d (%s cache)", run,
                                isCold ? "cold" : "warm"));
    auto exec = runQuery(setup, sql);
    double v = virtualQuerySeconds(setup, exec, isCold ? cold : warm);
    printExecution(1, exec.wallSeconds * 1e3, v);
    if (isCold) vCold = v;
    else vWarm = v;
    printKeyValue("result rows (density map)",
                  util::format("%zu (one per chunk)",
                               exec.result->numRows()));
  }

  std::printf("\n");
  printKeyValue("paper", "HV3 noticeably faster than HV2 at equal scan cost");
  printKeyValue("reproduced",
                util::format("cold %.0f s / warm %.0f s — compare with "
                             "bench_hv2's output; the gap is the result "
                             "transfer", vCold, vWarm));
  return 0;
}
