/// \file bench_micro.cc
/// \brief google-benchmark microbenchmarks for the hot primitives, the
/// per-operation costs that justify the cost model's CPU constants
/// (simio::CostParams) and the frontend's per-chunk overhead estimate.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datagen/catalog_gen.h"
#include "datagen/partitioner.h"
#include "qserv/query_analysis.h"
#include "sql/dump.h"
#include "qserv/query_rewriter.h"
#include "sphgeom/chunker.h"
#include "sphgeom/coords.h"
#include "sphgeom/htm.h"
#include "sql/database.h"
#include "sql/parser.h"
#include "util/md5.h"
#include "util/rng.h"

namespace {

using namespace qserv;

void BM_Md5ChunkQuery(benchmark::State& state) {
  std::string query(256, 'q');
  util::Stopwatch watch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Md5::hex(query));
  }
  qserv::bench::recordRate("bench.micro.md5_chunk_query_ns_per_iter", watch,
                          state.iterations());
}
BENCHMARK(BM_Md5ChunkQuery);

void BM_AngSep(benchmark::State& state) {
  util::Rng rng(1);
  double a = rng.uniform(0, 360), b = rng.uniform(-90, 90);
  double c = rng.uniform(0, 360), d = rng.uniform(-90, 90);
  util::Stopwatch watch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sphgeom::angSepDeg(a, b, c, d));
    a += 1e-9;
  }
  qserv::bench::recordRate("bench.micro.ang_sep_ns_per_iter", watch,
                          state.iterations());
}
BENCHMARK(BM_AngSep);

void BM_ChunkerPointLocation(benchmark::State& state) {
  sphgeom::Chunker chunker(85, 12);
  util::Rng rng(2);
  util::Stopwatch watch;
  for (auto _ : state) {
    double lon = rng.uniform(0, 360), lat = rng.uniform(-90, 90);
    auto chunk = chunker.chunkAt(lon, lat);
    benchmark::DoNotOptimize(chunker.subChunkAt(chunk, lon, lat));
  }
  qserv::bench::recordRate("bench.micro.chunker_point_location_ns_per_iter", watch,
                          state.iterations());
}
BENCHMARK(BM_ChunkerPointLocation);

void BM_ChunkerCover1Deg(benchmark::State& state) {
  sphgeom::Chunker chunker(85, 12);
  util::Rng rng(3);
  util::Stopwatch watch;
  for (auto _ : state) {
    double lon = rng.uniform(0, 359), lat = rng.uniform(-60, 59);
    benchmark::DoNotOptimize(chunker.chunksIntersecting(
        sphgeom::SphericalBox(lon, lat, lon + 1, lat + 1)));
  }
  qserv::bench::recordRate("bench.micro.chunker_cover_1deg_ns_per_iter", watch,
                          state.iterations());
}
BENCHMARK(BM_ChunkerCover1Deg);

void BM_HtmPointToTrixel(benchmark::State& state) {
  util::Rng rng(4);
  util::Stopwatch watch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sphgeom::htm::pointToTrixel(
        rng.uniform(0, 360), rng.uniform(-90, 90), 8));
  }
  qserv::bench::recordRate("bench.micro.htm_point_to_trixel_ns_per_iter", watch,
                          state.iterations());
}
BENCHMARK(BM_HtmPointToTrixel);

void BM_ParseLv3(benchmark::State& state) {
  const char* sql =
      "SELECT COUNT(*) FROM Object WHERE ra_PS BETWEEN 1 AND 2 "
      "AND decl_PS BETWEEN 3 AND 4 "
      "AND fluxToAbMag(zFlux_PS) BETWEEN 21 AND 21.5 "
      "AND fluxToAbMag(gFlux_PS)-fluxToAbMag(rFlux_PS) BETWEEN 0.3 AND 0.4";
  util::Stopwatch watch;
  for (auto _ : state) {
    auto stmt = sql::parseStatement(sql);
    benchmark::DoNotOptimize(stmt);
  }
  qserv::bench::recordRate("bench.micro.parse_lv3_ns_per_iter", watch,
                          state.iterations());
}
BENCHMARK(BM_ParseLv3);

void BM_AnalyzeAndRewriteChunkQuery(benchmark::State& state) {
  core::CatalogConfig catalog = core::CatalogConfig::lsst();
  sphgeom::Chunker chunker = catalog.makeChunker();
  core::QueryRewriter rewriter(catalog, chunker);
  auto analyzed = core::analyzeQuery(
      "SELECT AVG(uFlux_SG) FROM Object WHERE "
      "qserv_areaspec_box(0, 0, 10, 10) AND uRadius_PS > 0.04",
      catalog);
  std::vector<std::int32_t> chunks = {4000};
  util::Stopwatch watch;
  for (auto _ : state) {
    auto rewrite = rewriter.rewrite(*analyzed, chunks, "merged");
    benchmark::DoNotOptimize(rewrite);
  }
  qserv::bench::recordRate("bench.micro.rewrite_chunk_query_ns_per_iter", watch,
                          state.iterations());
}
BENCHMARK(BM_AnalyzeAndRewriteChunkQuery);

sql::Database* scanDb() {
  static sql::Database* db = [] {
    auto* d = new sql::Database("micro");
    datagen::BasePatchOptions opts;
    opts.objectCount = 100000;
    datagen::BasePatchGenerator gen(opts);
    auto objects = gen.objects();
    sphgeom::Chunker chunker(1, 1);
    auto cat = datagen::partitionCatalog(chunker, objects, {});
    (void)datagen::loadChunkIntoDatabase(*d, cat->chunks[0]);
    return d;
  }();
  return db;
}

void BM_ExecutorFilterScan100k(benchmark::State& state) {
  sql::Database* db = scanDb();
  std::string table = db->tableNames()[1];  // Object_0
  std::string sql = "SELECT COUNT(*) FROM Object_0 WHERE ra_PS > 0 AND "
                    "fluxToAbMag(gFlux_PS) - fluxToAbMag(rFlux_PS) > 0.5";
  std::uint64_t rows = 0;
  util::Stopwatch watch;
  for (auto _ : state) {
    sql::ExecStats stats;
    auto r = db->execute(sql, &stats);
    benchmark::DoNotOptimize(r);
    rows += stats.rowsScanned;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rows));
  (void)table;
  qserv::bench::recordRate("bench.micro.executor_filter_scan_100k_ns_per_iter", watch,
                          state.iterations());
}
BENCHMARK(BM_ExecutorFilterScan100k);

void BM_ExecutorIndexProbe(benchmark::State& state) {
  sql::Database* db = scanDb();
  util::Rng rng(7);
  util::Stopwatch watch;
  for (auto _ : state) {
    std::string sql = "SELECT * FROM Object_0 WHERE objectId = " +
                      std::to_string(rng.below(100000));
    auto r = db->execute(sql);
    benchmark::DoNotOptimize(r);
  }
  qserv::bench::recordRate("bench.micro.executor_index_probe_ns_per_iter", watch,
                          state.iterations());
}
BENCHMARK(BM_ExecutorIndexProbe);

void BM_DumpAndReplay1kRows(benchmark::State& state) {
  sql::Database* db = scanDb();
  auto r = db->execute("SELECT * FROM Object_0 LIMIT 1000");
  util::Stopwatch watch;
  for (auto _ : state) {
    std::string dump = sql::dumpTable(**r, "replayed");
    sql::Database other;
    auto loaded = sql::loadDump(other, dump);
    benchmark::DoNotOptimize(loaded);
  }
  qserv::bench::recordRate("bench.micro.dump_and_replay_1k_rows_ns_per_iter", watch,
                          state.iterations());
}
BENCHMARK(BM_DumpAndReplay1kRows);

// Writes the metrics snapshot at exit when QSERV_METRICS_JSON is set
// (perf-smoke's BENCH_micro.json baseline).
const bool kMetricsSnapshotHook =
    (qserv::bench::emitMetricsSnapshotAtExit(), true);

}  // namespace

BENCHMARK_MAIN();
