/// \file bench_concurrency.cc
/// \brief Figure 14 — concurrent execution of 2xHV2 + LV1 + LV2 streams
/// (§6.4, 150 nodes).
/// Paper: the two HV2 scans take ~2x their solo time (5:53 vs ~3 min) since
/// each is a full scan competing for resources and shared scanning is not
/// implemented; the low-volume streams' early queries get "stuck" behind
/// scan tasks in worker FIFO queues (query skew), later ones finish faster.
/// We reproduce the four streams through the real system and feed all
/// queries into ONE joint queue simulation so they interact exactly as the
/// paper describes (FIFO, no concept of query cost).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "util/metrics.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Figure 14 — concurrent 2xHV2 + LV1 + LV2 (150 nodes)",
              "§6.4, Fig 14: HV2 ~2x solo; LV queries convoyed in FIFO "
              "queues, later ones faster",
              "worker FIFO queues couple the streams; no query-cost "
              "scheduling");

  PaperSetupOptions opts;
  opts.basePatchObjects = 700;
  opts.withSources = true;
  opts.sourceRegion = sphgeom::SphericalBox(0, -7, 90, 7);
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  const std::string hv2 =
      "SELECT objectId, ra_PS, decl_PS, uFlux_PS, gFlux_PS, rFlux_PS, "
      "iFlux_PS, zFlux_PS, yFlux_PS FROM Object "
      "WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 4";

  simio::CostParams params = simio::CostParams::paper150();
  params.cacheFraction = 0.65;  // the Fig 6 operating point

  // Execute each stream's queries through the real stack to obtain their
  // chunk tasks, then build the joint simulation timeline.
  std::vector<simio::SimQuery> queries;
  std::vector<std::string> labels;

  auto addQuery = [&](const std::string& sql, double submitSec,
                      const std::string& label) {
    auto exec = runQuery(setup, sql);
    simio::SimQuery q;
    q.submitSec = submitSec;
    q.tasks = virtualTasks(setup, exec, params, 150);
    queries.push_back(std::move(q));
    labels.push_back(label);
  };

  // Two HV2 streams starting together.
  addQuery(hv2, 0.0, "HV2 #1");
  addQuery(hv2, 0.5, "HV2 #2");

  // LV1 stream: queries with 1 s pauses, submitted one after another
  // (the paper pauses 1 s between completions; fixed offsets approximate
  // the same arrival pattern).
  auto ids = sampleObjectIds(setup, 16, 98);
  for (int i = 0; i < 8; ++i) {
    addQuery("SELECT * FROM Object WHERE objectId = " +
                 std::to_string(ids[static_cast<std::size_t>(i)]),
             1.0 + 40.0 * i, util::format("LV1 #%d", i + 1));
  }
  // LV2 stream.
  for (int i = 0; i < 8; ++i) {
    addQuery("SELECT taiMidPoint, ra, decl FROM Source WHERE objectId = " +
                 std::to_string(ids[static_cast<std::size_t>(8 + i)]),
             2.0 + 40.0 * i, util::format("LV2 #%d", i + 1));
  }

  // Solo reference for HV2.
  double hv2Solo =
      simio::simulateQueries({queries[0]}, params)[0].elapsedSec();

  auto results = simio::simulateQueries(queries, params);
  std::printf("\n  %-8s %10s %10s %10s\n", "stream", "submit s", "end s",
              "elapsed s");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("  %-8s %10.1f %10.1f %10.1f\n", labels[i].c_str(),
                results[i].submitSec, results[i].completionSec,
                results[i].elapsedSec());
  }

  std::printf("\n");
  printKeyValue("HV2 solo", util::format("%.0f s", hv2Solo));
  printKeyValue("HV2 concurrent",
                util::format("%.0f s and %.0f s — %.2fx / %.2fx of solo "
                             "(paper: ~2x)",
                             results[0].elapsedSec(), results[1].elapsedSec(),
                             results[0].elapsedSec() / hv2Solo,
                             results[1].elapsedSec() / hv2Solo));
  double firstLv = results[2].elapsedSec();
  double lastLv = results[9].elapsedSec();
  printKeyValue("LV1 first vs last",
                util::format("%.1f s -> %.1f s (paper: early queries stuck "
                             "in queues, later ones faster)",
                             firstLv, lastLv));

  // ---- §4.3 scheduler ablation: the same joint workload with the worker
  // priority lane on. Interactive (LV) tasks claim freed slots ahead of
  // queued scan tasks, so the Fig 14 convoy disappears; the HV2 scans keep
  // their FIFO-era times (the lane must not starve them).
  double soloLv = simio::simulateQueries({queries[2]}, params)[0].elapsedSec();
  auto lvP50 = [](const std::vector<simio::SimQueryResult>& rs) {
    std::vector<double> lv;
    for (std::size_t i = 2; i < rs.size(); ++i) {
      lv.push_back(rs[i].elapsedSec());
    }
    std::sort(lv.begin(), lv.end());
    return lv[lv.size() / 2];
  };
  double fifoP50 = lvP50(results);
  simio::CostParams laneParams = params;
  laneParams.workerPriorityLane = true;
  auto laneResults = simio::simulateQueries(queries, laneParams);
  double laneP50 = lvP50(laneResults);

  std::printf("\n");
  printKeyValue("LV p50 solo", util::format("%.1f s", soloLv));
  printKeyValue("LV p50 FIFO",
                util::format("%.1f s (%.2fx solo)", fifoP50, fifoP50 / soloLv));
  printKeyValue("LV p50 priority lane",
                util::format("%.1f s (%.2fx solo)", laneP50, laneP50 / soloLv));
  printKeyValue("HV2 under lane",
                util::format("%.0f s / %.0f s (%.2fx / %.2fx solo)",
                             laneResults[0].elapsedSec(),
                             laneResults[1].elapsedSec(),
                             laneResults[0].elapsedSec() / hv2Solo,
                             laneResults[1].elapsedSec() / hv2Solo));

  auto& reg = util::MetricsRegistry::instance();
  reg.gauge("bench.concurrency.lv_p50_solo_ms")
      .set(static_cast<std::int64_t>(soloLv * 1e3));
  reg.gauge("bench.concurrency.lv_p50_fifo_ms")
      .set(static_cast<std::int64_t>(fifoP50 * 1e3));
  reg.gauge("bench.concurrency.lv_p50_lane_ms")
      .set(static_cast<std::int64_t>(laneP50 * 1e3));

  // Perf gate: with the priority lane, interactive latency under two
  // concurrent full scans stays within 1.5x of its solo latency.
  if (laneP50 > 1.5 * soloLv) {
    std::fprintf(stderr,
                 "GATE FAILED: priority-lane LV p50 %.1f s > 1.5x solo "
                 "%.1f s\n",
                 laneP50, soloLv);
    return 1;
  }
  return 0;
}
