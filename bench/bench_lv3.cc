/// \file bench_lv3.cc
/// \brief Figure 4 — Low Volume 3, spatially-restricted filter + aggregation:
///   SELECT COUNT(*) FROM Object WHERE ra_PS BETWEEN .. AND decl_PS BETWEEN
///   .. AND <color cuts>
/// Paper: ~4 s per execution, flat; the 1 deg^2 box is randomized within
/// +-20 deg declination; only the handful of covering chunks is dispatched
/// (coarse spherical indexing), and each pays one chunk scan.
#include <cstdio>

#include "bench_util.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner(
      "Figure 4 — Low Volume 3 (spatially-restricted color count)",
      "§6.2 LV3, Fig 4: ~4 s per execution, flat",
      "interactive latency: few chunks dispatched, one warm chunk scan each");

  PaperSetupOptions opts;
  opts.basePatchObjects = 900;
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  const int kRuns = 4;
  const int kQueriesPerRun = 17;
  simio::CostParams cold = simio::CostParams::paper150();
  simio::CostParams warm = cold;
  // The paper's LV3 numbers ride the MySQL/OS page cache (16 GB RAM per
  // node, repeatedly touched chunks); see §6.2's caching caveats.
  warm.cacheFraction = 0.9;

  util::Rng rng(333);
  util::RunningStats allWarm, allCold, chunksTouched;
  for (int run = 1; run <= kRuns; ++run) {
    printRunHeader(util::format("Run %d (%d executions)", run,
                                kQueriesPerRun));
    for (int i = 0; i < kQueriesPerRun; ++i) {
      double ra = rng.uniform(0.0, 359.0);
      double dec = rng.uniform(-20.0, 19.0);
      std::string sql = util::format(
          "SELECT COUNT(*) FROM Object "
          "WHERE ra_PS BETWEEN %.3f AND %.3f AND decl_PS BETWEEN %.3f AND "
          "%.3f AND fluxToAbMag(zFlux_PS) BETWEEN 15 AND 25 "
          "AND fluxToAbMag(gFlux_PS)-fluxToAbMag(rFlux_PS) BETWEEN 0.1 AND 1.0 "
          "AND fluxToAbMag(iFlux_PS)-fluxToAbMag(zFlux_PS) BETWEEN -0.2 AND 0.5",
          ra, ra + 1.0, dec, dec + 1.0);
      auto exec = runQuery(setup, sql);
      chunksTouched.add(static_cast<double>(exec.chunksDispatched));
      double vWarm = virtualQuerySeconds(setup, exec, soloParams(exec, warm));
      double vCold = virtualQuerySeconds(setup, exec, soloParams(exec, cold));
      printExecution(i + 1, exec.wallSeconds * 1e3, vWarm);
      allWarm.add(vWarm);
      allCold.add(vCold);
    }
  }

  std::printf("\n");
  printKeyValue("chunks dispatched per query",
                util::format("mean %.1f (coarse spatial pruning; full sky "
                             "would be %zu)",
                             chunksTouched.mean(), setup.sortedChunks.size()));
  printKeyValue("paper", "~4 s per execution, roughly constant");
  printKeyValue("reproduced warm (virtual)",
                util::format("%.2f s mean, %.2f..%.2f s", allWarm.mean(),
                             allWarm.min(), allWarm.max()));
  printKeyValue("reproduced cold (virtual)",
                util::format("%.2f s mean — the paper's occasional ~9 s "
                             "outliers are cold-cache executions",
                             allCold.mean()));
  return 0;
}
