/// \file bench_lv1.cc
/// \brief Figure 2 — Low Volume 1, object retrieval:
///   SELECT * FROM Object WHERE objectId = <objId>
/// The paper measures ~4 s per execution, roughly constant across runs of
/// 20 queries with uniformly randomized objectIds; the time is dominated by
/// the fixed frontend overhead (proxy, dispatch, result collection), with
/// the secondary index confining work to a single chunk.
#include <cstdio>

#include "bench_util.h"
#include "util/stats.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Figure 2 — Low Volume 1 (object retrieval by objectId)",
              "§6.2 LV1, Fig 2: ~4 s per execution, flat across executions",
              "flat per-execution time near the ~4 s frontend overhead "
              "floor; single chunk dispatched per query");

  PaperSetupOptions opts;
  opts.basePatchObjects = 900;
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  const int kRuns = 7;
  const int kQueriesPerRun = 20;
  simio::CostParams paper = simio::CostParams::paper150();

  util::RunningStats allVirtual;
  for (int run = 1; run <= kRuns; ++run) {
    printRunHeader(util::format("Run %d (%d executions)", run,
                                kQueriesPerRun));
    auto ids = sampleObjectIds(setup, kQueriesPerRun,
                               1000 + static_cast<std::uint64_t>(run));
    util::RunningStats wall, virt;
    for (int i = 0; i < kQueriesPerRun; ++i) {
      std::string sql = "SELECT * FROM Object WHERE objectId = " +
                        std::to_string(ids[static_cast<std::size_t>(i)]);
      auto exec = runQuery(setup, sql);
      if (exec.result->numRows() != 1 || exec.chunksDispatched != 1) {
        std::fprintf(stderr, "unexpected LV1 result shape\n");
        return 1;
      }
      double v = virtualQuerySeconds(setup, exec, paper);
      printExecution(i + 1, exec.wallSeconds * 1e3, v);
      wall.add(exec.wallSeconds * 1e3);
      virt.add(v);
      allVirtual.add(v);
    }
    printKeyValue("run summary",
                  util::format("wall mean %.2f ms; virtual mean %.2f s "
                               "(min %.2f, max %.2f)",
                               wall.mean(), virt.mean(), virt.min(),
                               virt.max()));
  }

  std::printf("\n");
  printKeyValue("paper", "~4 s per execution, roughly constant");
  printKeyValue("reproduced (virtual)",
                util::format("%.2f s mean, spread %.2f..%.2f s",
                             allVirtual.mean(), allVirtual.min(),
                             allVirtual.max()));
  return 0;
}
