/// \file bench_hv2.cc
/// \brief Figure 6 — High Volume 2, full-sky filter scan:
///   SELECT objectId, ra_PS, decl_PS, <fluxes> FROM Object
///   WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 4
/// Paper: 2.5-3 minutes per execution when (partially) cached; one 7-minute
/// uncached run. From the uncached run the paper derives the aggregate
/// table-scan bandwidth: 1.824e12 bytes / 420 s = 4.0 GB/s (27 MB/s/node);
/// cached runs imply ~11 GB/s (76 MB/s/node). We reproduce both operating
/// points with the cache-fraction knob and report the same bandwidths.
#include <cstdio>

#include "bench_util.h"
#include "util/stats.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Figure 6 — High Volume 2 (full-sky filter scan)",
              "§6.2 HV2, Fig 6: 150-180 s cached runs, 420 s uncached run",
              "scan-bandwidth bound; ~70k result rows at paper scale");

  PaperSetupOptions opts;
  opts.basePatchObjects = 900;
  // The paper's i-z > 4 outliers are ~4e-5 of rows; a 900-object base patch
  // needs a larger fraction so the duplicated tail is non-empty (the
  // selected-row count is reported at paper scale below).
  opts.basePatch.redOutlierFraction = 3e-3;
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  const std::string sql =
      "SELECT objectId, ra_PS, decl_PS, uFlux_PS, gFlux_PS, rFlux_PS, "
      "iFlux_PS, zFlux_PS, yFlux_PS FROM Object "
      "WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 4";

  simio::CostParams cold = simio::CostParams::paper150();
  simio::CostParams warm = cold;
  warm.cacheFraction = 0.65;  // the partially-cached steady state of Fig 6

  const double objectBytes = 1.824e12;  // §6.2: MyISAM .MYD of Object

  for (int run = 1; run <= 4; ++run) {
    // The paper's Run 3 hit a cold cache; others were partially cached.
    bool isCold = (run == 3);
    printRunHeader(util::format("Run %d (%s cache)", run,
                                isCold ? "cold" : "warm"));
    auto exec = runQuery(setup, sql);
    double v = virtualQuerySeconds(setup, exec, isCold ? cold : warm);
    printExecution(1, exec.wallSeconds * 1e3, v);
    double aggBw = objectBytes / v;
    printKeyValue("paper-scale result rows",
                  util::format("%.3g (paper ~70k)",
                               static_cast<double>(exec.result->numRows()) *
                                   setup.rowScale));
    printKeyValue("aggregate scan bandwidth",
                  util::format("%.1f GB/s = %.0f MB/s/node (paper: 4.0 GB/s "
                               "uncached, ~11 GB/s cached)",
                               aggBw / 1e9, aggBw / 150 / 1e6));
  }

  std::printf("\n");
  printKeyValue("paper", "2.5-3 min warm; 7 min cold (the honest number)");
  return 0;
}
