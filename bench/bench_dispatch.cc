/// \file bench_dispatch.cc
/// \brief Ablation — the single-master dispatch bottleneck (§7.6).
///
/// "A launch of even the most trivial full-sky query launches about 9000
/// chunk queries" and "managing millions from a single point is likely to
/// be problematic". This bench (a) verifies the linear growth of trivial
/// full-sky queries with chunk count (the Fig 11 HV1 trend), measuring both
/// the modeled cluster and our real frontend's per-chunk wall cost, and
/// (b) projects the paper's proposed remedies — multiple masters /
/// tree-based dispatch — by dividing the serialized per-chunk overhead.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Ablation — single-master dispatch overhead (trivial query)",
              "§7.6 Distributed management; Fig 11 HV1 trend",
              "time ~ chunks x per-chunk master cost; multiple masters "
              "divide it");

  PaperSetupOptions opts;
  opts.basePatchObjects = 900;
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks", setup.setupSeconds,
                                      setup.sortedChunks.size()));

  simio::CostParams params = simio::CostParams::paper150();

  std::printf("\n  %-10s %12s %14s %16s\n", "chunks", "virtual s",
              "wall ms (real)", "wall us/chunk");
  double lastWallPerChunk = 0;
  for (std::size_t count : {1000ul, 2000ul, 4000ul, 8832ul}) {
    std::vector<std::int32_t> subset(
        setup.sortedChunks.begin(),
        setup.sortedChunks.begin() +
            std::min(count, setup.sortedChunks.size()));
    setup.frontend().setAvailableChunks(subset);
    auto exec = runQuery(setup, "SELECT COUNT(*) FROM Object");
    double v = virtualQuerySeconds(setup, exec, params);
    lastWallPerChunk = exec.wallSeconds * 1e6 / subset.size();
    std::printf("  %-10zu %12.1f %14.0f %16.1f\n", subset.size(), v,
                exec.wallSeconds * 1e3, lastWallPerChunk);
  }
  setup.frontend().setAvailableChunks(setup.sortedChunks);

  // Multi-master projection: k masters each dispatch 1/k of the chunks.
  std::printf("\n  %-10s %22s\n", "masters", "full-sky trivial query s");
  auto exec = runQuery(setup, "SELECT COUNT(*) FROM Object");
  for (int masters : {1, 2, 4, 8}) {
    simio::CostParams p = params;
    p.masterPerChunkOverheadSec = params.masterPerChunkOverheadSec / masters;
    p.resultTransferBytesPerSec = params.resultTransferBytesPerSec * masters;
    double v = virtualQuerySeconds(setup, exec, p);
    std::printf("  %-10d %22.1f\n", masters, v);
  }
  std::printf("\n");
  printKeyValue("paper §7.6",
                "'One way to distribute the management load is to launch "
                "multiple master instances'");
  printKeyValue("real frontend cost",
                util::format("%.1f us of wall time per chunk query on this "
                             "machine (parse+rewrite+hash+dispatch+merge)",
                             lastWallPerChunk));
  return 0;
}
