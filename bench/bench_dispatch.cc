/// \file bench_dispatch.cc
/// \brief Ablation — the single-master dispatch bottleneck (§7.6) and the
/// batched per-worker remedy.
///
/// "A launch of even the most trivial full-sky query launches about 9000
/// chunk queries" and "managing millions from a single point is likely to
/// be problematic". This bench (a) verifies the linear growth of trivial
/// full-sky queries with chunk count under the paper's per-chunk dispatch
/// (the Fig 11 HV1 trend), (b) runs the same sweep with batched per-worker
/// dispatch — one request per (query, worker), results streamed back — and
/// gates on the amortized master overhead, and (c) projects the paper's
/// multiple-masters remedy for comparison.
///
/// Gates (abort with nonzero exit on violation):
///   - amortized batched dispatch <= 0.3 ms/chunk at the full 8832-chunk sky
///   - batched dispatch term >= 5x cheaper than per-chunk (2.8 ms/chunk)
///   - batched real wall <= 1.15x the per-chunk real wall at max chunks
///   - amortized batched dispatch <= 0.3 ms/chunk at DR scale (~100k chunks)
///
/// The DR-scale section partitions the same sky at finer geometry (LSST
/// data-release chunk counts, ~11x the paper's 8832) and re-measures the
/// amortized master cost there — the dispatch fix has to hold where chunk
/// counts are heading, not just at PT1.1 scale. Override the geometry with
/// QSERV_DISPATCH_DR_STRIPES (0 skips the section).
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "util/metrics.h"

namespace {

using namespace qserv;
using namespace qserv::bench;

struct ModeResult {
  double wallMsAtMax = 0;      ///< real wall of the largest sweep point
  double virtualSecAtMax = 0;  ///< modeled 150-node time, largest point
  double dispatchSecPerChunk = 0;  ///< modeled master cost per chunk
  std::size_t maxChunks = 0;
};

ModeResult runMode(core::DispatchMode mode, const simio::CostParams& params) {
  PaperSetupOptions opts;
  opts.basePatchObjects = 900;
  opts.dispatchMode = mode;
  PaperSetup setup = makePaperSetup(opts);
  printRunHeader(mode == core::DispatchMode::kPerChunk
                     ? "per-chunk dispatch (paper §5.4)"
                     : "batched per-worker dispatch (UberJob-style)");
  printKeyValue("setup", util::format("%.1f s, %zu chunks", setup.setupSeconds,
                                      setup.sortedChunks.size()));

  ModeResult out;
  std::printf("\n  %-10s %12s %14s %16s\n", "chunks", "virtual s",
              "wall ms (real)", "wall us/chunk");
  for (std::size_t count : {1000ul, 2000ul, 4000ul, 8832ul}) {
    std::vector<std::int32_t> subset(
        setup.sortedChunks.begin(),
        setup.sortedChunks.begin() +
            std::min(count, setup.sortedChunks.size()));
    setup.frontend().setAvailableChunks(subset);
    auto exec = runQuery(setup, "SELECT COUNT(*) FROM Object");
    auto tasks = virtualTasks(setup, exec, params);
    double v = simio::simulateQuery(tasks, params).elapsedSec();
    std::printf("  %-10zu %12.1f %14.0f %16.1f\n", subset.size(), v,
                exec.wallSeconds * 1e3,
                exec.wallSeconds * 1e6 / subset.size());
    out.wallMsAtMax = exec.wallSeconds * 1e3;
    out.virtualSecAtMax = v;
    out.maxChunks = subset.size();
    out.dispatchSecPerChunk =
        tasks.empty() ? 0.0
                      : (tasks.front().dispatchSec >= 0
                             ? tasks.front().dispatchSec
                             : params.masterPerChunkOverheadSec);
  }
  setup.frontend().setAvailableChunks(setup.sortedChunks);

  if (mode == core::DispatchMode::kPerChunk) {
    // Multi-master projection: k masters each dispatch 1/k of the chunks
    // (§7.6's "launch multiple master instances"). Batching attacks the
    // same term from the other side: fewer requests per master.
    std::printf("\n  %-10s %22s\n", "masters", "full-sky trivial query s");
    auto exec = runQuery(setup, "SELECT COUNT(*) FROM Object");
    for (int masters : {1, 2, 4, 8}) {
      simio::CostParams p = params;
      p.masterPerChunkOverheadSec = params.masterPerChunkOverheadSec / masters;
      p.resultTransferBytesPerSec = params.resultTransferBytesPerSec * masters;
      double v = virtualQuerySeconds(setup, exec, p);
      std::printf("  %-10d %22.1f\n", masters, v);
    }
  }
  std::printf("\n");
  return out;
}

/// Batched dispatch at LSST data-release chunk counts: same sky, finer
/// partitioning geometry, one full-sky trivial query. Returns the result,
/// or {} when the section is disabled.
ModeResult runDrScale(const simio::CostParams& params) {
  int stripes = 286;  // ~100k chunks (the paper's 85 stripes -> 8832)
  if (const char* env = std::getenv("QSERV_DISPATCH_DR_STRIPES")) {
    stripes = std::atoi(env);
  }
  ModeResult out;
  if (stripes <= 0) return out;

  PaperSetupOptions opts;
  opts.basePatchObjects = 900;
  opts.numStripes = stripes;
  opts.numSubStripes = 3;  // subchunk granularity is irrelevant to dispatch
  opts.dispatchMode = core::DispatchMode::kBatched;
  PaperSetup setup = makePaperSetup(opts);
  printRunHeader(util::format("DR-scale batched dispatch (%d stripes)",
                              stripes));
  printKeyValue("setup", util::format("%.1f s, %zu chunks",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size()));

  auto exec = runQuery(setup, "SELECT COUNT(*) FROM Object");
  auto tasks = virtualTasks(setup, exec, params);
  out.wallMsAtMax = exec.wallSeconds * 1e3;
  out.virtualSecAtMax = simio::simulateQuery(tasks, params).elapsedSec();
  out.maxChunks = setup.sortedChunks.size();
  out.dispatchSecPerChunk =
      tasks.empty() ? 0.0 : tasks.front().dispatchSec;
  std::printf("  %-10zu %12.1f %14.0f %16.1f\n\n", out.maxChunks,
              out.virtualSecAtMax, out.wallMsAtMax,
              exec.wallSeconds * 1e6 / static_cast<double>(out.maxChunks));
  return out;
}

}  // namespace

int main() {
  printBanner("Ablation — single-master dispatch overhead (trivial query)",
              "§7.6 Distributed management; Fig 11 HV1 trend",
              "per-chunk: time ~ chunks x 2.8 ms; batched: one request per "
              "worker amortizes the master cost to ~0.25 ms/chunk");

  simio::CostParams params = simio::CostParams::paper150();
  ModeResult perChunk = runMode(core::DispatchMode::kPerChunk, params);
  ModeResult batched = runMode(core::DispatchMode::kBatched, params);
  ModeResult drScale = runDrScale(params);

  double amortizedMs = batched.dispatchSecPerChunk * 1e3;
  double speedup =
      perChunk.dispatchSecPerChunk / batched.dispatchSecPerChunk;
  printKeyValue("paper §7.6",
                "'One way to distribute the management load is to launch "
                "multiple master instances'");
  printKeyValue("per-chunk master cost",
                util::format("%.2f ms/chunk (paper HV1 anchor)",
                             perChunk.dispatchSecPerChunk * 1e3));
  printKeyValue("batched master cost",
                util::format("%.3f ms/chunk amortized at %zu chunks "
                             "(%.1fx cheaper)",
                             amortizedMs, batched.maxChunks, speedup));
  printKeyValue("real wall at max chunks",
                util::format("per-chunk %.0f ms, batched %.0f ms",
                             perChunk.wallMsAtMax, batched.wallMsAtMax));
  if (drScale.maxChunks > 0) {
    printKeyValue("DR-scale master cost",
                  util::format("%.3f ms/chunk amortized at %zu chunks "
                               "(wall %.0f ms)",
                               drScale.dispatchSecPerChunk * 1e3,
                               drScale.maxChunks, drScale.wallMsAtMax));
  }

  auto& reg = util::MetricsRegistry::instance();
  reg.gauge("bench.dispatch.batched_amortized_ns")
      .set(static_cast<std::int64_t>(batched.dispatchSecPerChunk * 1e9));
  reg.gauge("bench.dispatch.model_speedup_x100")
      .set(static_cast<std::int64_t>(speedup * 100));
  reg.gauge("bench.dispatch.perchunk_wall_ms")
      .set(static_cast<std::int64_t>(perChunk.wallMsAtMax));
  reg.gauge("bench.dispatch.batched_wall_ms")
      .set(static_cast<std::int64_t>(batched.wallMsAtMax));
  if (drScale.maxChunks > 0) {
    reg.gauge("bench.dispatch.dr_chunks")
        .set(static_cast<std::int64_t>(drScale.maxChunks));
    reg.gauge("bench.dispatch.dr_amortized_ns")
        .set(static_cast<std::int64_t>(drScale.dispatchSecPerChunk * 1e9));
    reg.gauge("bench.dispatch.dr_wall_ms")
        .set(static_cast<std::int64_t>(drScale.wallMsAtMax));
  }

  int violations = 0;
  if (amortizedMs > 0.3) {
    std::fprintf(stderr,
                 "GATE: amortized batched dispatch %.3f ms/chunk > 0.3 ms at "
                 "%zu chunks\n",
                 amortizedMs, batched.maxChunks);
    ++violations;
  }
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "GATE: batched dispatch only %.1fx cheaper than per-chunk "
                 "(need >= 5x)\n",
                 speedup);
    ++violations;
  }
  if (batched.wallMsAtMax > perChunk.wallMsAtMax * 1.15) {
    std::fprintf(stderr,
                 "GATE: batched real wall %.0f ms > 1.15x per-chunk %.0f ms\n",
                 batched.wallMsAtMax, perChunk.wallMsAtMax);
    ++violations;
  }
  if (drScale.maxChunks > 0 && drScale.dispatchSecPerChunk * 1e3 > 0.3) {
    std::fprintf(stderr,
                 "GATE: DR-scale amortized dispatch %.3f ms/chunk > 0.3 ms "
                 "at %zu chunks\n",
                 drScale.dispatchSecPerChunk * 1e3, drScale.maxChunks);
    ++violations;
  }
  return violations == 0 ? 0 : 1;
}
