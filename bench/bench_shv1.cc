/// \file bench_shv1.cc
/// \brief Super High Volume 1 — near-neighbor self-join (§6.2):
///   SELECT count(*) FROM Object o1, Object o2
///   WHERE qserv_areaspec_box(...)  -- 100 deg^2
///   AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1
/// Paper: ~10 minutes per area (667.19 s and 660.25 s over two random
/// 100 deg^2 areas); "resultant row counts ranged between 3 to 5 billion".
/// Execution uses on-the-fly subchunk + overlap tables (§5.2), turning the
/// naive O(n^2) into O(kn).
///
/// Scaling note: pair counts are quadratic in density, so a sparse sample
/// over-weights the diagonal (every object pairs with itself exactly once
/// at ANY density). The unbiased paper-scale estimate is
///   (pairs - n) * rowScale^2 + n * rowScale,
/// and this bench also densifies the survey region so the correction is
/// small.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("SHV1 — near-neighbor pairs within 0.1 deg over 100 deg^2",
              "§6.2 SHV1: ~660 s per area; 3-5e9 pairs found",
              "minutes-scale; subchunked O(kn) join; billions of pairs at "
              "paper scale");

  // Generate a dense local survey covering just the two test areas.
  PaperSetupOptions opts;
  opts.basePatchObjects = 9000;
  opts.objectRegion = sphgeom::SphericalBox(8, -14, 38, 14);
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  simio::CostParams paper = simio::CostParams::paper150();
  const double areas[2][2] = {{12.0, -11.0}, {24.0, -9.0}};
  for (int area = 0; area < 2; ++area) {
    double ra = areas[area][0], dec = areas[area][1];
    printRunHeader(util::format("Area %d: 10x10 deg at (%.0f, %.0f)",
                                area + 1, ra, dec));
    // Objects inside the area, for the diagonal correction.
    auto countExec = runQuery(
        setup, util::format("SELECT COUNT(*) FROM Object WHERE "
                            "qserv_areaspec_box(%.1f, %.1f, %.1f, %.1f)",
                            ra, dec, ra + 10.0, dec + 10.0));
    double n = static_cast<double>(countExec.result->cell(0, 0).asInt());

    std::string sql = util::format(
        "SELECT count(*) FROM Object o1, Object o2 "
        "WHERE qserv_areaspec_box(%.1f, %.1f, %.1f, %.1f) "
        "AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1",
        ra, dec, ra + 10.0, dec + 10.0);
    auto exec = runQuery(setup, sql);
    double v = virtualQuerySeconds(setup, exec, soloParams(exec, paper));
    printExecution(1, exec.wallSeconds * 1e3, v);

    double pairs = static_cast<double>(exec.result->cell(0, 0).asInt());
    double s = setup.rowScale;
    double paperPairs = (pairs - n) * s * s + n * s;
    printKeyValue("chunks (subchunked)",
                  util::format("%zu", exec.chunksDispatched));
    printKeyValue("objects in area",
                  util::format("%.0f (paper scale %.3g)", n, n * s));
    printKeyValue("pairs found",
                  util::format("%.0f -> paper scale %.3g (paper 3-5e9)",
                               pairs, paperPairs));
    printKeyValue("virtual time", util::format("%.0f s (paper ~660 s)", v));
  }
  return 0;
}
