/// \file bench_subchunks.cc
/// \brief Ablation — subchunk granularity for near-neighbor joins (§4.4).
///
/// "With spatial data split into smaller partitions, a SQL engine computing
/// the join need not even consider (and reject) all possible pairs of
/// objects ... a task that is naively O(n^2) becomes O(kn)." But finer
/// subchunks mean more on-the-fly table builds. This sweep varies
/// sub-stripes per stripe and reports pairs evaluated, rows built, and the
/// modeled query time — the trade-off that led the paper to 12.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Ablation — subchunk granularity (sub-stripes per stripe)",
              "§4.4 two-level partitions; paper config: 12",
              "coarse: quadratic pair work; fine: build overhead grows; "
              "a broad sweet spot in between");

  const std::string sql =
      "SELECT count(*) FROM Object o1, Object o2 "
      "WHERE qserv_areaspec_box(14, -6, 24, 4) "
      "AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1";

  std::printf("\n  %-12s %14s %14s %14s %12s\n", "sub-stripes",
              "pairs evaluated", "rows built", "virtual s", "wall ms");
  for (int subStripes : {1, 2, 4, 8, 12, 16}) {
    PaperSetupOptions opts;
    opts.basePatchObjects = 6000;
    opts.objectRegion = sphgeom::SphericalBox(12, -10, 28, 8);
    opts.numSubStripes = subStripes;
    PaperSetup setup = makePaperSetup(opts);

    auto exec = runQuery(setup, sql);
    double pairs = 0, built = 0;
    for (const auto& a : exec.accounting) {
      pairs += static_cast<double>(a.observables.pairsEvaluated);
      built += static_cast<double>(a.observables.rowsBuilt);
    }
    simio::CostParams params = simio::CostParams::paper150();
    double v = virtualQuerySeconds(setup, exec, soloParams(exec, params));
    std::printf("  %-12d %14.3g %14.3g %14.0f %12.0f\n", subStripes, pairs,
                built, v, exec.wallSeconds * 1e3);
  }
  std::printf("\n");
  printKeyValue("paper choice",
                "12 sub-stripes: pairs reduced by ~n_sub^2 while build cost "
                "stays a small fraction of the join");
  return 0;
}
