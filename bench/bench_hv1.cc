/// \file bench_hv1.cc
/// \brief Figure 5 — High Volume 1, full-sky count:
///   SELECT COUNT(*) FROM Object
/// Paper: 20-30 s. "This COUNT(*) query ... illustrates the built-in cost
/// of querying over all partitions in the sky": each chunk query is nearly
/// free (MyISAM answers COUNT(*) from metadata), so the time is the master's
/// fixed per-chunk dispatch/collect work across all 8983 chunks.
#include <cstdio>

#include "bench_util.h"
#include "util/stats.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Figure 5 — High Volume 1 (full-sky COUNT(*))",
              "§6.2 HV1, Fig 5: 20-30 s per execution",
              "time ~ 8983 x per-chunk master overhead; worker work ~ 0");

  PaperSetupOptions opts;
  opts.basePatchObjects = 900;
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  simio::CostParams paper = simio::CostParams::paper150();
  const int kRuns = 3;
  const int kPerRun = 3;
  util::RunningStats virtStats;
  std::int64_t count = -1;
  for (int run = 1; run <= kRuns; ++run) {
    printRunHeader(util::format("Run %d", run));
    for (int i = 0; i < kPerRun; ++i) {
      auto exec = runQuery(setup, "SELECT COUNT(*) FROM Object");
      count = exec.result->cell(0, 0).asInt();
      double v = virtualQuerySeconds(setup, exec, paper);
      printExecution(i + 1, exec.wallSeconds * 1e3, v);
      virtStats.add(v);
    }
  }

  std::printf("\n");
  printKeyValue("row count (scaled catalog)", util::format("%lld",
                                                           (long long)count));
  printKeyValue("chunks dispatched",
                util::format("%zu (paper: 8983)", setup.sortedChunks.size()));
  printKeyValue("paper", "20-30 s per execution");
  printKeyValue("reproduced (virtual)",
                util::format("%.1f s mean (%.1f..%.1f)", virtStats.mean(),
                             virtStats.min(), virtStats.max()));
  return 0;
}
