/// \file bench_htm.cc
/// \brief Ablation — RA/Dec box chunking vs Hierarchical Triangular Mesh
/// (§7.5 "Alternate partitioning").
///
/// "The rectangular fragmentation ... is problematic due to severe
/// distortion near the poles. We are exploring ... the hierarchical
/// triangular mesh (HTM) ... These schemes can produce partitions with less
/// variation in area." This bench measures both claims: partition-area
/// variation and spatial-pruning precision of region covers.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sphgeom/htm.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Ablation — stripe/box chunking vs HTM (area + pruning)",
              "§7.5 Alternate partitioning",
              "HTM: bounded area variation everywhere; boxes: distorted at "
              "the poles; similar pruning overcover at matched granularity");

  // Granularity match: the paper's chunker has 8983 chunks; HTM level 5 has
  // 8*4^5 = 8192 trixels.
  sphgeom::Chunker chunker(85, 12);
  const int kHtmLevel = 5;

  // ---- partition-area statistics -----------------------------------------
  util::RunningStats boxAll, boxPolar;
  double boxMin = 1e18, boxMax = 0;
  for (std::int32_t id : chunker.allChunks()) {
    double a = chunker.chunkBox(id).area();
    boxAll.add(a);
    boxMin = std::min(boxMin, a);
    boxMax = std::max(boxMax, a);
  }
  util::RunningStats htmAll;
  double htmMin = 1e18, htmMax = 0;
  // Enumerate level-5 trixels: ids [8*4^5, 16*4^5).
  sphgeom::htm::TrixelId lo = 8ULL << (2 * kHtmLevel);
  sphgeom::htm::TrixelId hi = 16ULL << (2 * kHtmLevel);
  for (sphgeom::htm::TrixelId id = lo; id < hi; ++id) {
    double a = sphgeom::htm::trixelArea(id);
    htmAll.add(a);
    htmMin = std::min(htmMin, a);
    htmMax = std::max(htmMax, a);
  }
  std::printf("\n  %-28s %10s %10s %10s %9s\n", "scheme", "mean deg2",
              "min", "max", "max/min");
  std::printf("  %-28s %10.3f %10.4f %10.3f %9.1f\n",
              "boxes (85 stripes, 8983)", boxAll.mean(), boxMin, boxMax,
              boxMax / boxMin);
  std::printf("  %-28s %10.3f %10.4f %10.3f %9.1f\n", "HTM level 5 (8192)",
              htmAll.mean(), htmMin, htmMax, htmMax / htmMin);

  // ---- pruning precision ---------------------------------------------------
  // Cover random 1 deg^2 boxes; precision = covered area / box area.
  util::Rng rng(99);
  util::RunningStats boxCover, htmCover, boxCoverPolar, htmCoverPolar;
  for (int i = 0; i < 300; ++i) {
    double lon = rng.uniform(0, 359);
    bool polar = (i % 3 == 0);
    double lat = polar ? rng.uniform(75, 85) : rng.uniform(-30, 29);
    sphgeom::SphericalBox box(lon, lat, lon + 1.0, lat + 1.0);

    double boxArea = 0;
    for (std::int32_t id : chunker.chunksIntersecting(box)) {
      boxArea += chunker.chunkBox(id).area();
    }
    double htmArea = 0;
    for (auto id : sphgeom::htm::coverBox(box, kHtmLevel)) {
      htmArea += sphgeom::htm::trixelArea(id);
    }
    (polar ? boxCoverPolar : boxCover).add(boxArea / box.area());
    (polar ? htmCoverPolar : htmCover).add(htmArea / box.area());
  }
  std::printf("\n  %-28s %14s %14s\n", "pruning overcover (x box area)",
              "mid-latitudes", "near pole");
  std::printf("  %-28s %14.1f %14.1f\n", "boxes", boxCover.mean(),
              boxCoverPolar.mean());
  std::printf("  %-28s %14.1f %14.1f\n", "HTM level 5 (conservative)",
              htmCover.mean(), htmCoverPolar.mean());

  std::printf("\n");
  printKeyValue("paper §7.5 claim",
                "hierarchical schemes give less area variation; boxes "
                "degrade near the poles");
  return 0;
}
