/// \file bench_shv2.cc
/// \brief Super High Volume 2 — sources not near objects (§6.2):
///   SELECT o.objectId, s.sourceId, ... FROM Object o, Source s
///   WHERE qserv_areaspec_box(...)  -- ~150 deg^2
///   AND o.objectId = s.objectId
///   AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > 0.0045
/// Paper: an O(kn) join between the 2 TB Object and 30 TB Source tables
/// with k ~= 41; measured 5:20:38, 2:06:56, 2:41:03 over three random
/// areas ("variance ... presumed to be caused by varying spatial object
/// density").
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("SHV2 — sources not near their object, over ~150 deg^2",
              "§6.2 SHV2: 2.1-5.3 hours; k ~= 41 sources per object",
              "hours-scale; Source-scan plus seek-bound indexed join");

  // Sources only where the query looks (the paper clipped Source too).
  sphgeom::SphericalBox queryBox(224.1, -7.5, 237.1, 5.5);
  PaperSetupOptions opts;
  opts.basePatchObjects = 700;
  opts.withSources = true;
  opts.sourceRegion = queryBox;
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  const std::string sql =
      "SELECT o.objectId, s.sourceId, s.ra, s.decl, o.ra_PS, o.decl_PS "
      "FROM Object o, Source s "
      "WHERE qserv_areaspec_box(224.1, -7.5, 237.1, 5.5) "
      "AND o.objectId = s.objectId "
      "AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > 0.0045";

  simio::CostParams paper = simio::CostParams::paper150();
  for (int run = 1; run <= 3; ++run) {
    printRunHeader(util::format("Run %d", run));
    auto exec = runQuery(setup, sql);
    double v = virtualQuerySeconds(setup, exec, soloParams(exec, paper));
    printExecution(1, exec.wallSeconds * 1e3, v);
    double matches = 0, srcBytes = 0;
    for (const auto& a : exec.accounting) {
      matches += static_cast<double>(a.observables.joinMatches);
      srcBytes += a.observables.bytesScanned;
    }
    printKeyValue("chunks", util::format("%zu", exec.chunksDispatched));
    printKeyValue("joined source rows (paper scale)",
                  util::format("%.3g (k ~= 41 per object)", matches));
    printKeyValue("bytes scanned (paper scale)",
                  util::humanBytes(srcBytes));
    printKeyValue("stray sources found",
                  util::format("%zu rows (scaled: %.3g)",
                               exec.result->numRows(),
                               static_cast<double>(exec.result->numRows()) *
                                   setup.rowScale));
    printKeyValue("virtual time",
                  util::format("%.2f h (paper 2.1-5.3 h)", v / 3600.0));
  }
  return 0;
}
