add_library(bench_util OBJECT bench/bench_util.cc)
target_link_libraries(bench_util PUBLIC qserv_core)
target_include_directories(bench_util PUBLIC ${CMAKE_SOURCE_DIR}/bench)

function(qserv_add_bench name)
  add_executable(${name} bench/${name}.cc $<TARGET_OBJECTS:bench_util>)
  target_link_libraries(${name} PRIVATE qserv_core benchmark::benchmark)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

qserv_add_bench(bench_table1)
qserv_add_bench(bench_lv1)
qserv_add_bench(bench_lv2)
qserv_add_bench(bench_lv3)
qserv_add_bench(bench_hv1)
qserv_add_bench(bench_hv2)
qserv_add_bench(bench_hv3)
qserv_add_bench(bench_shv1)
qserv_add_bench(bench_shv2)
qserv_add_bench(bench_scaling_lv)
qserv_add_bench(bench_scaling_hv)
qserv_add_bench(bench_scaling_shv)
qserv_add_bench(bench_concurrency)
qserv_add_bench(bench_shared_scan)
qserv_add_bench(bench_subchunks)
qserv_add_bench(bench_overlap)
qserv_add_bench(bench_index)
qserv_add_bench(bench_htm)
qserv_add_bench(bench_dispatch)
qserv_add_bench(bench_repair)
qserv_add_bench(bench_transfer)
qserv_add_bench(bench_micro)
qserv_add_bench(bench_filter)
qserv_add_bench(bench_spatial_join)
qserv_add_bench(bench_observability)

# perf-smoke: a fast benchmark pass (micro primitives + scan-filter kernels)
# whose metrics snapshots land in the build dir as BENCH_*.json baselines.
# Run with `ctest -R ^perf_smoke_` or the perf-smoke target; bench_filter
# additionally self-checks scalar/vector parity, the >=3x non-selective scan
# speedup, and zero-rows-scanned zone pruning (it aborts on violation).
# The perf CONFIGURATIONS keeps these out of the default `ctest` pass (timing
# gates do not belong in the correctness tier); `ctest -C perf` runs them.
add_test(NAME perf_smoke_micro
  CONFIGURATIONS perf
  COMMAND bench_micro --benchmark_min_time=0.02)
set_tests_properties(perf_smoke_micro PROPERTIES
  LABELS "perf"
  ENVIRONMENT "QSERV_METRICS_JSON=${CMAKE_BINARY_DIR}/BENCH_micro.json")
add_test(NAME perf_smoke_filter
  CONFIGURATIONS perf
  COMMAND bench_filter --benchmark_min_time=0.02)
set_tests_properties(perf_smoke_filter PROPERTIES
  LABELS "perf"
  ENVIRONMENT "QSERV_METRICS_JSON=${CMAKE_BINARY_DIR}/BENCH_filter.json")
add_test(NAME perf_smoke_spatial_join
  CONFIGURATIONS perf
  COMMAND bench_spatial_join --benchmark_min_time=0.02)
set_tests_properties(perf_smoke_spatial_join PROPERTIES
  LABELS "perf"
  ENVIRONMENT "QSERV_METRICS_JSON=${CMAKE_BINARY_DIR}/BENCH_spatial_join.json")
# bench_observability gates profiling overhead (<5% wall) and smoke-checks
# EXPLAIN / EXPLAIN ANALYZE / QueryStats; plain main, no google-benchmark
# flags.
add_test(NAME perf_smoke_observability
  CONFIGURATIONS perf
  COMMAND bench_observability)
set_tests_properties(perf_smoke_observability PROPERTIES
  LABELS "perf"
  ENVIRONMENT "QSERV_METRICS_JSON=${CMAKE_BINARY_DIR}/BENCH_observability.json")
# bench_dispatch gates the batched-dispatch speedup floors (amortized master
# cost <= 0.3 ms/chunk at the full sky, >= 5x over per-chunk, batched wall
# not slower than per-chunk); bench_transfer gates the binary codec's bytes
# and modeled collect-speedup floors. Both abort nonzero on violation.
add_test(NAME perf_smoke_dispatch
  CONFIGURATIONS perf
  COMMAND bench_dispatch)
set_tests_properties(perf_smoke_dispatch PROPERTIES
  LABELS "perf"
  ENVIRONMENT "QSERV_METRICS_JSON=${CMAKE_BINARY_DIR}/BENCH_dispatch.json")
add_test(NAME perf_smoke_transfer
  CONFIGURATIONS perf
  COMMAND bench_transfer)
set_tests_properties(perf_smoke_transfer PROPERTIES
  LABELS "perf"
  ENVIRONMENT "QSERV_METRICS_JSON=${CMAKE_BINARY_DIR}/BENCH_transfer.json")
# bench_repair gates the self-healing control plane: throttled repair
# (transfer budget 1) must restore 2x redundancy with concurrent point-query
# p50 <= 1.5x quiescent, every query correct. Aborts nonzero on violation.
add_test(NAME perf_smoke_repair
  CONFIGURATIONS perf
  COMMAND bench_repair)
set_tests_properties(perf_smoke_repair PROPERTIES
  LABELS "perf"
  ENVIRONMENT "QSERV_METRICS_JSON=${CMAKE_BINARY_DIR}/BENCH_repair.json")
# Shared-scan scheduler gates (paper §4.3 vs the §6.4/Fig 14 skew):
# bench_concurrency gates interactive latency under scan load (priority-lane
# LV p50 <= 1.5x solo while 2 HV2 scans run); bench_shared_scan gates the
# N-scans-one-pass byte bound (shared total <= 1.25x a single scan's bytes).
# Both abort nonzero on violation.
add_test(NAME perf_smoke_concurrency
  CONFIGURATIONS perf
  COMMAND bench_concurrency)
set_tests_properties(perf_smoke_concurrency PROPERTIES
  LABELS "perf"
  ENVIRONMENT "QSERV_METRICS_JSON=${CMAKE_BINARY_DIR}/BENCH_concurrency.json")
add_test(NAME perf_smoke_shared_scan
  CONFIGURATIONS perf
  COMMAND bench_shared_scan)
set_tests_properties(perf_smoke_shared_scan PROPERTIES
  LABELS "perf"
  ENVIRONMENT "QSERV_METRICS_JSON=${CMAKE_BINARY_DIR}/BENCH_shared_scan.json")
add_custom_target(perf-smoke
  COMMAND ${CMAKE_CTEST_COMMAND} -C perf -R "^perf_smoke_"
          --output-on-failure
  DEPENDS bench_micro bench_filter bench_spatial_join bench_observability
          bench_dispatch bench_transfer bench_repair bench_concurrency
          bench_shared_scan
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR}
  COMMENT "perf-smoke: bench_micro + bench_filter + bench_spatial_join + "
          "bench_observability + bench_dispatch + bench_transfer + "
          "bench_repair + bench_concurrency + bench_shared_scan with "
          "metrics snapshots")
