/// \file bench_overlap.cc
/// \brief Ablation — the overlap margin (§4.4 "Overlap").
///
/// "To produce correct results under strict partitioning, nodes need access
/// to objects from outside partitions ... each partition can be stored with
/// a precomputed amount of overlapping data." The margin buys correctness
/// for joins up to that radius at the price of duplicated storage. This
/// sweep shows: (a) pair counts are exact once margin >= join radius and
/// silently low below it; (b) storage overhead grows with the margin.
/// The paper used 1 arcmin.
#include <cstdio>

#include "bench_util.h"
#include "qserv/cluster.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Ablation — overlap margin vs join correctness and storage",
              "§4.4 Overlap; §6.1.2: overlap = 1 arcmin (0.01667 deg)",
              "undersized margins lose cross-chunk pairs; storage overhead "
              "grows linearly with margin");

  const double joinRadius = 1.0 / 60.0;  // 1 arcmin, the paper's margin
  const std::string sql = util::format(
      "SELECT count(*) FROM Object o1, Object o2 "
      "WHERE qserv_areaspec_box(14, -6, 24, 4) "
      "AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < %.17g",
      joinRadius);

  std::printf("\n  %-16s %12s %14s %14s\n", "margin (arcmin)", "pairs",
              "overlap rows", "storage +%");
  double exactPairs = -1;
  for (double arcmin : {2.0, 1.5, 1.0, 0.5, 0.25, 0.0}) {
    core::CatalogConfig catalog = core::CatalogConfig::lsst(85, 12,
                                                            arcmin / 60.0);
    core::SkyDataOptions data;
    data.basePatchObjects = 6000;
    data.withSources = false;
    data.region = sphgeom::SphericalBox(12, -10, 28, 8);
    auto sky = core::buildSkyCatalog(catalog, data);
    if (!sky.isOk()) return 1;

    std::size_t owned = 0, overlap = 0;
    for (const auto& chunk : sky->chunks) {
      owned += chunk.objects->numRows();
      overlap += chunk.objectOverlap->numRows();
    }

    core::ClusterOptions opts;
    opts.numWorkers = 4;
    opts.frontend.catalog = catalog;
    auto cluster = core::MiniCluster::create(opts, *sky);
    if (!cluster.isOk()) return 1;
    auto exec = (*cluster)->frontend().query(sql);
    if (!exec.isOk()) return 1;
    double pairs = static_cast<double>(exec->result->cell(0, 0).asInt());
    if (exactPairs < 0) exactPairs = pairs;  // largest margin = ground truth

    std::printf("  %-16.2f %12.0f %14zu %13.2f%%%s\n", arcmin, pairs, overlap,
                100.0 * overlap / owned,
                pairs < exactPairs ? "   <-- pairs lost" : "");
  }
  std::printf("\n");
  printKeyValue("paper choice",
                "1 arcmin: exact for the SHV1 radius regime at ~small "
                "storage overhead");
  return 0;
}
