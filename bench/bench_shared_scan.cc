/// \file bench_shared_scan.cc
/// \brief Ablation — shared scanning (§4.3) vs the deployed FIFO scheduler.
///
/// The paper's Fig 14 shows two concurrent full scans taking ~2x their solo
/// time "since each is a full table scan that is competing for resources
/// and shared scanning has not been implemented". This bench runs the same
/// two-scan workload twice through the REAL worker scheduler — once FIFO,
/// once with shared scanning enabled — and compares the modeled cluster
/// times. With sharing, co-queued tasks on the same chunk ride one disk
/// pass, so "results from many full-scan queries can be returned in little
/// more than the time for a single full-scan query".
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "util/metrics.h"

namespace {

using namespace qserv;
using namespace qserv::bench;

struct ScenarioResult {
  double q1Sec = 0, q2Sec = 0;
  double sharedFraction = 0;  // tasks that paid no scan I/O
  double bytesScanned = 0;    // paper-scale bytes both scans paid together
};

ScenarioResult runScenario(core::SchedulerMode mode) {
  PaperSetupOptions opts;
  opts.basePatchObjects = 1200;
  // A ~200-chunk region with all chunk queries in flight at once: worker
  // queues hold both scans' tasks simultaneously, the shared-scan
  // scheduler's grouping opportunity (real shared scanning holds scan
  // queries for the duration of a table pass).
  opts.objectRegion = sphgeom::SphericalBox(0, -16, 30, 12);
  // Batched dispatch stages every chunk task at batch-write time; per-chunk
  // dispatch would cap staged tasks at the dispatcher's in-flight slots and
  // the two scans could never fully co-queue.
  opts.dispatchMode = core::DispatchMode::kBatched;
  opts.workerConfig.scheduler = mode;
  opts.workerConfig.slots = 2;
  // This ablation measures pure same-chunk sharing; keep the slow-scan
  // eviction out of it (tier splits would break grouping on timing noise —
  // the eviction path has its own unit tests).
  opts.workerConfig.slowScanFactor = 0.0;
  // Stage both scans' chunk tasks in the worker queues before any executes
  // (real shared scanning likewise batches scan queries against the next
  // pass over the table).
  opts.workerConfig.startPaused = true;
  PaperSetup setup = makePaperSetup(opts);

  const std::string hv2 =
      "SELECT objectId, ra_PS, decl_PS FROM Object "
      "WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 4";

  // Submit both scans concurrently so their chunk tasks co-queue. Both
  // predicates are flux expressions: zone maps cannot prune them, so each
  // is a genuine full pass over every chunk (a plain range predicate like
  // `uRadius_PS > 0.2` is zone-pruned to zero I/O and would measure
  // nothing).
  core::QservFrontend::Execution e1, e2;
  std::thread t1([&] { e1 = runQuery(setup, hv2); });
  std::thread t2([&] {
    e2 = runQuery(setup, "SELECT objectId, ra_PS, decl_PS FROM Object "
                         "WHERE fluxToAbMag(gFlux_PS) - "
                         "fluxToAbMag(rFlux_PS) > 0.8");
  });
  // Let both dispatchers enqueue everything, then open the floodgates.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  for (std::size_t w = 0; w < setup.cluster->numWorkers(); ++w) {
    setup.cluster->worker(w).resume();
  }
  t1.join();
  t2.join();

  simio::CostParams params = simio::CostParams::paper150();
  simio::SimQuery q1, q2;
  q1.submitSec = 0.0;
  q1.tasks = virtualTasks(setup, e1, params, 150);
  q2.submitSec = 0.5;
  q2.tasks = virtualTasks(setup, e2, params, 150);
  auto results = simio::simulateQueries({q1, q2}, params);

  ScenarioResult out;
  out.q1Sec = results[0].elapsedSec();
  out.q2Sec = results[1].elapsedSec();
  std::size_t freeRides = 0, total = 0;
  for (const auto* e : {&e1, &e2}) {
    for (const auto& a : e->accounting) {
      ++total;
      if (a.observables.bytesScanned == 0) ++freeRides;
      out.bytesScanned += a.observables.bytesScanned;
    }
  }
  out.sharedFraction = total ? static_cast<double>(freeRides) / total : 0;
  return out;
}

}  // namespace

int main() {
  printBanner("Ablation — shared scanning vs FIFO under two concurrent scans",
              "§4.3 (design), §6.4/Fig 14 (FIFO measurement)",
              "FIFO: both scans ~2x solo. Shared: both near 1x solo");

  auto fifo = runScenario(core::SchedulerMode::kFifo);
  std::printf("\n");
  printKeyValue("FIFO",
                util::format("scan A %.0f s, scan B %.0f s (%.0f%% of chunk "
                             "tasks shared a read)",
                             fifo.q1Sec, fifo.q2Sec,
                             fifo.sharedFraction * 100));

  auto shared = runScenario(core::SchedulerMode::kSharedScan);
  printKeyValue("shared scanning",
                util::format("scan A %.0f s, scan B %.0f s (%.0f%% of chunk "
                             "tasks shared a read)",
                             shared.q1Sec, shared.q2Sec,
                             shared.sharedFraction * 100));

  // Makespan: when do BOTH scans have their answers? (§4.3: "results from
  // many full-scan queries can be returned in little more than the time for
  // a single full-scan query" — the per-query sum is the wrong statistic,
  // since FIFO drains one staged scan before the other even starts.)
  double gain = std::max(fifo.q1Sec, fifo.q2Sec) /
                std::max(shared.q1Sec, shared.q2Sec);
  printKeyValue("both-scans makespan",
                util::format("FIFO %.0f s, shared %.0f s: %.2fx faster",
                             std::max(fifo.q1Sec, fifo.q2Sec),
                             std::max(shared.q1Sec, shared.q2Sec), gain));

  // Under FIFO both scans pay the full table, so half the FIFO total is the
  // single-scan byte baseline; shared scanning must bring BOTH scans in
  // near that one pass.
  double singlePass = fifo.bytesScanned / 2.0;
  printKeyValue("bytes scanned",
                util::format("FIFO %.1f GB, shared %.1f GB (1 pass = %.1f "
                             "GB): %.2fx of a single pass",
                             fifo.bytesScanned / 1e9,
                             shared.bytesScanned / 1e9, singlePass / 1e9,
                             shared.bytesScanned / singlePass));

  auto& reg = util::MetricsRegistry::instance();
  reg.gauge("bench.shared_scan.fifo_bytes_mb")
      .set(static_cast<std::int64_t>(fifo.bytesScanned / 1e6));
  reg.gauge("bench.shared_scan.shared_bytes_mb")
      .set(static_cast<std::int64_t>(shared.bytesScanned / 1e6));
  reg.gauge("bench.shared_scan.speedup_x100")
      .set(static_cast<std::int64_t>(gain * 100));

  // Perf gate: N concurrent scans in ~1 physical pass (paper §4.3: "results
  // from many full-scan queries ... in little more than the time for a
  // single full-scan query").
  if (shared.bytesScanned > 1.25 * singlePass) {
    std::fprintf(stderr,
                 "GATE FAILED: shared-scan bytes %.2f GB > 1.25x single-pass "
                 "baseline %.2f GB\n",
                 shared.bytesScanned / 1e9, singlePass / 1e9);
    return 1;
  }
  return 0;
}
