/// \file bench_repair.cc
/// \brief Repair-under-traffic perf smoke: a worker dies, the control plane
/// re-replicates every under-replicated chunk back to target redundancy
/// while low-volume point queries keep flying. Measures repair throughput
/// and the latency tax repair traffic puts on concurrent queries.
///
/// The transfer budget is deliberately small (1 concurrent copy): repair is
/// background work and must not starve the query path. Gates (abort with
/// nonzero exit on violation):
///   - repair completes: zero under-replicated chunks at the end
///   - every concurrent query returns the correct row
///   - concurrent LV p50 during repair <= 1.5x the quiescent p50
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "util/metrics.h"

namespace {

using namespace qserv;
using namespace qserv::bench;

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  auto idx = static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

}  // namespace

int main() {
  emitMetricsSnapshotAtExit();
  printBanner("Repair under traffic — re-replication throughput + latency tax",
              "ROADMAP item 4: self-healing replication control plane",
              "throttled repair (budget 1) restores 2x redundancy with "
              "concurrent point-query p50 <= 1.5x quiescent");

  core::CatalogConfig catalog = core::CatalogConfig::lsst(18, 6, 0.05);
  core::SkyDataOptions skyOpts;
  skyOpts.basePatchObjects = 2000;
  skyOpts.withSources = false;
  skyOpts.region = sphgeom::SphericalBox(0, -30, 90, 30);
  auto sky = core::buildSkyCatalog(catalog, skyOpts);
  if (!sky.isOk()) {
    std::fprintf(stderr, "bench setup: %s\n", sky.status().toString().c_str());
    return 1;
  }

  core::ClusterOptions opts;
  opts.frontend.catalog = catalog;
  opts.numWorkers = 4;
  opts.replication = 2;
  opts.repair.transferBudget = 1;  // the throttle under test
  opts.repair.copyBackoff.base = std::chrono::microseconds(500);
  opts.repair.copyBackoff.cap = std::chrono::microseconds(5'000);
  util::Stopwatch setupWatch;
  auto cluster = core::MiniCluster::create(opts, *sky);
  if (!cluster.isOk()) {
    std::fprintf(stderr, "bench cluster: %s\n",
                 cluster.status().toString().c_str());
    return 1;
  }
  auto& frontend = (*cluster)->frontend();
  auto& repair = (*cluster)->repairController();
  printKeyValue("setup",
                util::format("%.1f s, %zu chunks on 4 workers at 2x",
                             setupWatch.elapsedSeconds(),
                             (*cluster)->chunkIds().size()));

  // The LV workload: point lookups through the secondary index, sampled
  // across the catalog.
  std::vector<std::int64_t> ids;
  for (std::size_t i = 0; i < sky->index.size();
       i += std::max<std::size_t>(1, sky->index.size() / 512)) {
    ids.push_back(sky->index[i].objectId);
  }
  auto pointQuery = [&](std::size_t i) {
    return util::format("SELECT objectId, ra_PS FROM Object WHERE "
                        "objectId = %lld",
                        static_cast<long long>(ids[i % ids.size()]));
  };

  int badQueries = 0;
  auto measure = [&](std::size_t i) {
    util::Stopwatch watch;
    auto r = frontend.query(pointQuery(i));
    double us = watch.elapsedSeconds() * 1e6;
    if (!r.isOk() || r->result->numRows() != 1) ++badQueries;
    return us;
  };

  // Phase 1: quiescent latency baseline.
  for (std::size_t i = 0; i < 32; ++i) measure(i);  // warmup
  std::vector<double> quiescentUs;
  constexpr std::size_t kQuiescent = 400;
  for (std::size_t i = 0; i < kQuiescent; ++i) quiescentUs.push_back(measure(i));

  // Phase 2: kill a worker, declare it down, then repair with budget 1
  // while the same workload keeps running.
  (*cluster)->server(0).setUp(false);
  for (int i = 0; i < repair.config().downAfter; ++i) repair.probeOnce();
  std::size_t deficit = repair.underReplicatedChunks().size();

  // Degraded baseline: worker down, repair not yet running. Separates the
  // cost of serving with one replica set lost from the cost of the repair
  // traffic itself.
  std::vector<double> degradedUs;
  for (std::size_t i = 0; i < kQuiescent; ++i)
    degradedUs.push_back(measure(i));

  std::atomic<bool> repairDone{false};
  int copied = 0;
  util::Stopwatch repairWatch;
  double repairSeconds = 0.0;
  std::thread repairThread([&] {
    auto r = repair.repairOnce();
    repairSeconds = repairWatch.elapsedSeconds();
    copied = r.isOk() ? *r : -1;
    repairDone.store(true, std::memory_order_release);
  });
  std::vector<double> duringUs;
  std::size_t qi = 0;
  while (!repairDone.load(std::memory_order_acquire) ||
         duringUs.size() < 100) {
    duringUs.push_back(measure(qi++));
    if (duringUs.size() > 100'000) break;  // runaway backstop
  }
  repairThread.join();

  double qP50 = percentile(quiescentUs, 0.5);
  double qP99 = percentile(quiescentUs, 0.99);
  double dP50 = percentile(degradedUs, 0.5);
  double dP99 = percentile(degradedUs, 0.99);
  double rP50 = percentile(duringUs, 0.5);
  double rP99 = percentile(duringUs, 0.99);
  double ratio = qP50 > 0 ? rP50 / qP50 : 0.0;
  double chunksPerSec =
      repairSeconds > 0 ? static_cast<double>(copied) / repairSeconds : 0.0;

  std::printf("\n  %-28s %10s %10s\n", "", "p50 us", "p99 us");
  std::printf("  %-28s %10.0f %10.0f  (%zu queries)\n", "quiescent", qP50,
              qP99, quiescentUs.size());
  std::printf("  %-28s %10.0f %10.0f  (%zu queries)\n", "degraded, no repair",
              dP50, dP99, degradedUs.size());
  std::printf("  %-28s %10.0f %10.0f  (%zu queries)\n", "during repair", rP50,
              rP99, duringUs.size());
  std::printf("\n");
  printKeyValue("repair", util::format("%d/%zu chunk replicas in %.2f s "
                                       "(%.0f chunks/s, budget 1)",
                                       copied, deficit, repairSeconds,
                                       chunksPerSec));
  printKeyValue("latency tax",
                util::format("p50 %.2fx, p99 %.2fx", ratio,
                             qP99 > 0 ? rP99 / qP99 : 0.0));

  auto& reg = util::MetricsRegistry::instance();
  reg.gauge("bench.repair.quiescent_p50_us")
      .set(static_cast<std::int64_t>(qP50));
  reg.gauge("bench.repair.quiescent_p99_us")
      .set(static_cast<std::int64_t>(qP99));
  reg.gauge("bench.repair.during_p50_us").set(static_cast<std::int64_t>(rP50));
  reg.gauge("bench.repair.during_p99_us").set(static_cast<std::int64_t>(rP99));
  reg.gauge("bench.repair.chunks_repaired").set(copied);
  reg.gauge("bench.repair.chunks_per_sec")
      .set(static_cast<std::int64_t>(chunksPerSec));
  reg.gauge("bench.repair.p50_ratio_x100")
      .set(static_cast<std::int64_t>(ratio * 100));

  int violations = 0;
  if (copied < 0 || static_cast<std::size_t>(copied) != deficit ||
      !repair.underReplicatedChunks().empty()) {
    std::fprintf(stderr, "GATE: repair incomplete (%d of %zu copies)\n",
                 copied, deficit);
    ++violations;
  }
  if (badQueries > 0) {
    std::fprintf(stderr, "GATE: %d queries failed or returned wrong rows\n",
                 badQueries);
    ++violations;
  }
  if (ratio > 1.5) {
    std::fprintf(stderr,
                 "GATE: concurrent p50 %.0f us is %.2fx quiescent %.0f us "
                 "(limit 1.5x)\n",
                 rP50, ratio, qP50);
    ++violations;
  }
  return violations == 0 ? 0 : 1;
}
