/// \file bench_util.h
/// \brief Shared harness for the paper-reproduction benches.
///
/// Every figure bench runs the REAL Qserv stack (frontend, rewriter, xrd
/// dispatch, workers, dumps, merge) on a scaled-down synthetic sky laid out
/// with the paper's partitioning geometry (85 stripes x 12 sub-stripes,
/// 1 arcmin overlap), then reports two numbers per measurement:
///   - wall ms: real elapsed time of the scaled-down execution, and
///   - virtual s: the calibrated 150-node cluster simulation driven by the
///     per-chunk work observables (see DESIGN.md "Virtual-time methodology").
/// Chunk placement on the virtual cluster follows the same round-robin rule
/// the in-process cluster uses, so queue effects are consistent.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datagen/schemas.h"
#include "qserv/cluster.h"
#include "simio/queue_sim.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace qserv::bench {

/// Measured MyISAM bytes/row of the paper's test dataset (§6.2: Object .MYD
/// is 1.824e12 bytes for 1.7e9 rows; Source: 30e12 for 55e9).
inline constexpr double kObjectMydBytesPerRow = 1.824e12 / 1.7e9;  // ~1073
inline constexpr double kSourceMydBytesPerRow = 30e12 / 55e9;      // ~545

/// Declination clip for bench catalogs: the duplicator's RA-stretch keeps
/// density only to within the band's cos(dec) variation, which explodes in
/// the two polar bands (the §7.5 "severe distortion near the poles" the
/// paper itself calls out — their own dataset clipped Source to +-54 deg).
/// Clipping to the 11 non-polar bands keeps per-chunk loads within ~1.6x.
inline const sphgeom::SphericalBox kBenchSkyRegion =
    sphgeom::SphericalBox(0.0, -75.9, 360.0, 77.9);

struct PaperSetupOptions {
  std::int64_t basePatchObjects = 900;
  bool withSources = false;
  sphgeom::SphericalBox objectRegion = kBenchSkyRegion;
  /// Source coverage (paper: clipped to +-54 deg; benches clip harder to
  /// keep generation fast — Source queries restrict themselves to it).
  std::optional<sphgeom::SphericalBox> sourceRegion;
  int realWorkers = 8;     ///< in-process workers actually executing
  int numStripes = 85;     ///< paper partitioning geometry
  int numSubStripes = 12;
  core::WorkerConfig workerConfig;
  datagen::BasePatchOptions basePatch;  ///< objectCount is overridden
  int dispatchParallelism = 16;  ///< frontend in-flight chunk queries
  /// Paper fidelity by default: the figure benches reproduce the published
  /// per-chunk dispatch numbers; the batched ablation opts in explicitly.
  core::DispatchMode dispatchMode = core::DispatchMode::kPerChunk;
};

struct PaperSetup {
  core::CatalogConfig catalog;
  std::unique_ptr<core::MiniCluster> cluster;
  double rowScale = 1.0;  ///< paper rows per generated row (density ratio)
  std::vector<std::int32_t> sortedChunks;
  double setupSeconds = 0.0;

  core::QservFrontend& frontend() { return cluster->frontend(); }

  /// Position of a chunk in chunkId order (placement key).
  int chunkPosition(std::int32_t chunkId) const;
};

/// Build the paper-shaped cluster + catalog. Aborts on failure (benches).
PaperSetup makePaperSetup(const PaperSetupOptions& options);

/// Re-map a query's per-chunk accounting onto an N-node virtual cluster
/// with the paper's cost parameters. \p placementNodes overrides the modulo
/// used for chunk placement (0 = params.nodeCount) — the §6.3 emulation
/// keeps 150-node placement while dispatching only the first N nodes'
/// chunks.
std::vector<simio::SimChunkTask> virtualTasks(
    const PaperSetup& setup, const core::QservFrontend::Execution& exec,
    const simio::CostParams& params, int placementNodes = 0);

/// §6.3: "the frontend was configured to only dispatch queries for
/// partitions belonging to the desired set of cluster nodes" — restricts
/// the frontend to chunks placed on virtual nodes [0, nodes) of the
/// 150-node layout and returns that set. Undo with restoreFullCluster.
std::vector<std::int32_t> emulateClusterSize(PaperSetup& setup, int nodes);
void restoreFullCluster(PaperSetup& setup);

/// Virtual elapsed seconds of one query alone on an idle N-node cluster.
double virtualQuerySeconds(const PaperSetup& setup,
                           const core::QservFrontend::Execution& exec,
                           const simio::CostParams& params);

/// Cost parameters for simulating \p exec running ALONE: the scan-stream
/// count is the query's own per-node task concurrency (a 4-chunk query
/// never contends with itself; a full-sky scan saturates all slots).
simio::CostParams soloParams(const core::QservFrontend::Execution& exec,
                             simio::CostParams base);

/// Run a query through the frontend; aborts the bench on failure.
core::QservFrontend::Execution runQuery(PaperSetup& setup,
                                        const std::string& sql);

/// Deterministically sample \p n existing objectIds (uniform over the
/// secondary index, like the paper's randomized LV workloads).
std::vector<std::int64_t> sampleObjectIds(PaperSetup& setup, std::size_t n,
                                          std::uint64_t seed);

// ------------------------------------------------------------------ output

void printBanner(const std::string& experiment, const std::string& paperRef,
                 const std::string& expectation);
void printRunHeader(const std::string& label);

/// One series row: "  exec  3   wall   12.3 ms   virtual   4.02 s".
void printExecution(int index, double wallMs, double virtualSec);

void printKeyValue(const std::string& key, const std::string& value);

/// When the environment variable QSERV_METRICS_JSON names a file, arrange
/// for a metrics-registry snapshot to be written there as JSON when the
/// bench exits — so a BENCH_*.json regression can be attributed to the
/// layer (dispatch, worker queue, xrd, merge) that moved. Called by
/// makePaperSetup; safe to call repeatedly.
void emitMetricsSnapshotAtExit();

/// Record \p watch's mean per-iteration latency (nanoseconds) as registry
/// gauge \p gauge. Microbenchmarks that exercise raw primitives (no
/// instrumented Qserv layer) call this after their timing loop so their
/// QSERV_METRICS_JSON snapshot carries the measured rates instead of being
/// an empty registry dump. No-op when \p iterations is 0.
void recordRate(const std::string& gauge, const util::Stopwatch& watch,
                std::int64_t iterations);

}  // namespace qserv::bench
