/// \file bench_lv2.cc
/// \brief Figure 3 — Low Volume 2, time series:
///   SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr),
///          ra, decl FROM Source WHERE objectId = <objId>
/// Paper: ~4 s per execution, flat. objectIds are randomized over the whole
/// catalog, so some executions return null results where Source coverage is
/// clipped (the paper clipped |Dec| > 54; we clip harder for bench speed).
#include <cstdio>

#include "bench_util.h"
#include "util/stats.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Figure 3 — Low Volume 2 (time series from Source)",
              "§6.2 LV2, Fig 3: ~4 s per execution, flat",
              "flat ~4 s; one chunk per query; null results where Source "
              "coverage is clipped");

  PaperSetupOptions opts;
  opts.basePatchObjects = 600;
  opts.withSources = true;
  // Source coverage: an equatorial band (the paper clipped to +-54 deg for
  // disk space; we clip to +-7 deg for bench runtime — same mechanism).
  opts.sourceRegion = sphgeom::SphericalBox(0, -7, 360, 7);
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  const int kRuns = 3;
  const int kQueriesPerRun = 20;
  simio::CostParams paper = simio::CostParams::paper150();

  util::RunningStats allVirtual;
  int nullResults = 0, timeSeries = 0;
  for (int run = 1; run <= kRuns; ++run) {
    printRunHeader(util::format("Run %d (%d executions)", run,
                                kQueriesPerRun));
    auto ids = sampleObjectIds(setup, kQueriesPerRun,
                               2000 + static_cast<std::uint64_t>(run));
    util::RunningStats virt;
    for (int i = 0; i < kQueriesPerRun; ++i) {
      std::string sql =
          "SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr), "
          "ra, decl FROM Source WHERE objectId = " +
          std::to_string(ids[static_cast<std::size_t>(i)]);
      auto exec = runQuery(setup, sql);
      if (exec.result->numRows() == 0) ++nullResults;
      else ++timeSeries;
      double v = virtualQuerySeconds(setup, exec, soloParams(exec, paper));
      printExecution(i + 1, exec.wallSeconds * 1e3, v);
      virt.add(v);
      allVirtual.add(v);
    }
    printKeyValue("run summary",
                  util::format("virtual mean %.2f s (min %.2f, max %.2f)",
                               virt.mean(), virt.min(), virt.max()));
  }

  std::printf("\n");
  printKeyValue("time-series results / null results",
                util::format("%d / %d (nulls where Source is clipped, as in "
                             "the paper)",
                             timeSeries, nullResults));
  printKeyValue("paper", "~4 s per execution, roughly constant");
  printKeyValue("reproduced (virtual)",
                util::format("%.2f s mean, spread %.2f..%.2f s",
                             allVirtual.mean(), allVirtual.min(),
                             allVirtual.max()));
  return 0;
}
