/// \file bench_transfer.cc
/// \brief Ablation — result-transfer format (§5.4 / §7.1).
///
/// "Using mysqldump introduces overheads, but is the only user-level method
/// provided by MySQL to transfer tables between database servers. ... its
/// costs in speed, disk, network, and database transactions are strong
/// motivations to explore a more efficient method." This bench runs the
/// same row-heavy full-sky query with the paper's SQL-dump transfer and
/// with the binary row codec, comparing shipped bytes, real wall time, and
/// the modeled serialized collect stage on the master.
#include <cstdio>

#include "bench_util.h"
#include "util/metrics.h"

namespace {

using namespace qserv;
using namespace qserv::bench;

struct TransferResult {
  double resultBytes = 0;
  double collectSec = 0;
  double wallMs = 0;
  std::uint64_t rows = 0;
};

TransferResult runWith(core::TransferFormat format) {
  PaperSetupOptions opts;
  opts.basePatchObjects = 900;
  opts.workerConfig.transfer = format;
  PaperSetup setup = makePaperSetup(opts);

  // A row-heavy retrieval: every object in a band (lots of result traffic).
  auto exec = runQuery(setup,
                       "SELECT objectId, ra_PS, decl_PS, uFlux_PS, gFlux_PS, "
                       "rFlux_PS, iFlux_PS, zFlux_PS, yFlux_PS FROM Object "
                       "WHERE decl_PS BETWEEN -2 AND 2");
  TransferResult out;
  out.wallMs = exec.wallSeconds * 1e3;
  out.rows = exec.rowsMerged;
  simio::CostParams params = simio::CostParams::paper150();
  // INSERT-text replay costs ~2 us/row of master CPU; binary decode ~0.2 us.
  params.resultPerRowOverheadSec =
      format == core::TransferFormat::kBinary ? 2e-7 : 2e-6;
  for (const auto& a : exec.accounting) {
    out.resultBytes += a.observables.resultBytes;
    out.collectSec += simio::masterCollectSeconds(a.observables, params);
  }
  return out;
}

}  // namespace

int main() {
  printBanner("Ablation — mysqldump-style vs binary result transfer",
              "§5.4 Query Results Transfer; §7.1 Latency",
              "binary codec cuts shipped bytes and master replay time");

  auto dump = runWith(core::TransferFormat::kSqlDump);
  auto binary = runWith(core::TransferFormat::kBinary);

  std::printf("\n  %-22s %16s %14s %12s\n", "format", "paper-scale bytes",
              "collect s", "wall ms");
  std::printf("  %-22s %16s %14.1f %12.0f\n", "SQL dump (paper)",
              util::humanBytes(dump.resultBytes).c_str(), dump.collectSec,
              dump.wallMs);
  std::printf("  %-22s %16s %14.1f %12.0f\n", "binary row codec",
              util::humanBytes(binary.resultBytes).c_str(), binary.collectSec,
              binary.wallMs);
  if (dump.rows != binary.rows) {
    std::fprintf(stderr, "row-count mismatch between formats!\n");
    return 1;
  }
  std::printf("\n");
  double bytesRatio = dump.resultBytes / binary.resultBytes;
  double collectSpeedup = dump.collectSec / binary.collectSec;
  printKeyValue("rows merged (identical)",
                util::format("%llu", (unsigned long long)dump.rows));
  printKeyValue("bytes saved", util::format("%.1fx", bytesRatio));
  printKeyValue("modeled master collect speedup",
                util::format("%.1fx", collectSpeedup));

  auto& reg = util::MetricsRegistry::instance();
  reg.gauge("bench.transfer.bytes_ratio_x100")
      .set(static_cast<std::int64_t>(bytesRatio * 100));
  reg.gauge("bench.transfer.collect_speedup_x100")
      .set(static_cast<std::int64_t>(collectSpeedup * 100));

  // Speedup floors: the binary codec must keep paying for itself.
  int violations = 0;
  if (bytesRatio < 2.0) {
    std::fprintf(stderr, "GATE: binary codec saves only %.2fx bytes (need "
                 ">= 2x)\n", bytesRatio);
    ++violations;
  }
  if (collectSpeedup < 2.0) {
    std::fprintf(stderr, "GATE: modeled collect speedup only %.2fx (need "
                 ">= 2x)\n", collectSpeedup);
    ++violations;
  }
  return violations == 0 ? 0 : 1;
}
