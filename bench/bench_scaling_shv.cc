/// \file bench_scaling_shv.cc
/// \brief Figures 12-13 — super-high-volume queries vs node count
/// (40/100/150 nodes, constant data per node, §6.3.2).
/// Paper: "The tests on expensive queries did not show perfect scalability,
/// but nevertheless, the measurements did show some amount of parallelism.
/// It is unclear why execution in the 100-node configuration was the
/// slowest for both SHV1 and SHV2." SHV1 sits at ~600-750 s (Fig 12), SHV2
/// at hours (Fig 13); both queries touch a fixed ~100-150 deg^2 region, so
/// node count mainly moves queueing and placement, not total work.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Figures 12-13 — SHV1/SHV2 vs node count (constant data/node)",
              "§6.3.2, Figs 12-13: SHV1 ~600-750 s; SHV2 2-5 h; "
              "imperfect scaling, no strong trend",
              "region-bound queries: times roughly flat across node counts");

  // SHV1 needs a dense local survey (pair statistics are quadratic in
  // density; see bench_shv1's scaling note).
  PaperSetupOptions o1;
  o1.basePatchObjects = 9000;
  o1.objectRegion = sphgeom::SphericalBox(198, -14, 214, 14);
  PaperSetup setup1 = makePaperSetup(o1);

  sphgeom::SphericalBox shv2Box(224.1, -7.5, 237.1, 5.5);
  PaperSetupOptions o2;
  o2.basePatchObjects = 700;
  o2.withSources = true;
  o2.sourceRegion = shv2Box;
  PaperSetup setup2 = makePaperSetup(o2);
  printKeyValue("setup", util::format("%.1f s + %.1f s, rowScale %.0f / %.0f",
                                      setup1.setupSeconds, setup2.setupSeconds,
                                      setup1.rowScale, setup2.rowScale));

  const std::string shv1 =
      "SELECT count(*) FROM Object o1, Object o2 "
      "WHERE qserv_areaspec_box(200, -5, 210, 5) "
      "AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1";
  const std::string shv2 =
      "SELECT o.objectId, s.sourceId, s.ra, s.decl, o.ra_PS, o.decl_PS "
      "FROM Object o, Source s "
      "WHERE qserv_areaspec_box(224.1, -7.5, 237.1, 5.5) "
      "AND o.objectId = s.objectId "
      "AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > 0.0045";

  std::printf("\n  %-8s %14s %14s\n", "nodes", "SHV1 s", "SHV2 h");
  for (int nodes : {40, 100, 150}) {
    // SHV regions are fixed; all their chunks must stay available, so the
    // emulation here only changes the simulated node count (the paper's
    // random areas were necessarily drawn from the emulated clusters' data).
    simio::CostParams params = simio::CostParams::paper150();
    params.nodeCount = nodes;

    auto e1 = runQuery(setup1, shv1);
    auto p1 = soloParams(e1, params);
    double v1 = simio::simulateQuery(virtualTasks(setup1, e1, p1, 150), p1)
                    .elapsedSec();

    auto e2 = runQuery(setup2, shv2);
    auto p2 = soloParams(e2, params);
    double v2 = simio::simulateQuery(virtualTasks(setup2, e2, p2, 150), p2)
                    .elapsedSec();

    std::printf("  %-8d %14.0f %14.2f\n", nodes, v1, v2 / 3600.0);
  }
  std::printf("\n");
  printKeyValue("paper Fig 12", "SHV1: 600-750 s band, worst at 100 nodes");
  printKeyValue("paper Fig 13", "SHV2: ~2-5.3 h band, worst at 100 nodes");
  return 0;
}
