/// \file bench_scaling_lv.cc
/// \brief Figures 8-10 — low-volume query mean execution time vs node count
/// (40, 100, 150 nodes), constant data per node (§6.3.1).
/// Paper: "execution time is unaffected by node count given that the data
/// per node is constant" — all three LV curves are flat near 4 s (the
/// spikes in Figs 9/10 are attributed to competing cluster activity).
#include <cstdio>

#include "bench_util.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Figures 8-10 — LV1/LV2/LV3 weak scaling (constant data/node)",
              "§6.3.1, Figs 8-10: flat ~4 s at 40/100/150 nodes",
              "mean execution time independent of node count");

  PaperSetupOptions opts;
  opts.basePatchObjects = 700;
  opts.withSources = true;
  opts.sourceRegion = sphgeom::SphericalBox(0, -7, 120, 7);
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  const int kNodes[] = {40, 100, 150};
  const int kQueries = 12;

  std::printf("\n  %-8s %12s %12s %12s\n", "nodes", "LV1 mean s",
              "LV2 mean s", "LV3 mean s");
  for (int nodes : kNodes) {
    emulateClusterSize(setup, nodes);
    simio::CostParams params = simio::CostParams::paper150();
    params.nodeCount = nodes;

    util::RunningStats lv1, lv2, lv3;
    auto ids = sampleObjectIds(setup, kQueries * 2,
                               4000 + static_cast<std::uint64_t>(nodes));
    util::Rng rng(500 + static_cast<std::uint64_t>(nodes));
    for (int i = 0; i < kQueries; ++i) {
      {
        auto exec = runQuery(setup, "SELECT * FROM Object WHERE objectId = " +
                                        std::to_string(ids[i]));
        auto p = soloParams(exec, params);
        lv1.add(simio::simulateQuery(virtualTasks(setup, exec, p, 150), p)
                    .elapsedSec());
      }
      {
        auto exec = runQuery(
            setup, "SELECT taiMidPoint, ra, decl FROM Source "
                   "WHERE objectId = " +
                       std::to_string(ids[kQueries + i]));
        auto p = soloParams(exec, params);
        lv2.add(simio::simulateQuery(virtualTasks(setup, exec, p, 150), p)
                    .elapsedSec());
      }
      {
        double ra = rng.uniform(0.0, 359.0);
        double dec = rng.uniform(-20.0, 19.0);
        auto exec = runQuery(
            setup,
            util::format("SELECT COUNT(*) FROM Object WHERE ra_PS BETWEEN "
                         "%.3f AND %.3f AND decl_PS BETWEEN %.3f AND %.3f",
                         ra, ra + 1.0, dec, dec + 1.0));
        auto p = soloParams(exec, params);
        p.cacheFraction = 0.9;  // LV3 rides the cache, as in Fig 4
        lv3.add(simio::simulateQuery(virtualTasks(setup, exec, p, 150), p)
                    .elapsedSec());
      }
    }
    std::printf("  %-8d %12.2f %12.2f %12.2f\n", nodes, lv1.mean(),
                lv2.mean(), lv3.mean());
  }
  restoreFullCluster(setup);
  std::printf("\n");
  printKeyValue("paper", "flat near 4 s at every node count (Figs 8-10)");
  return 0;
}
