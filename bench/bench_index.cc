/// \file bench_index.cc
/// \brief Ablation — the objectId secondary index (§5.5).
///
/// "Indexing is crucial for optimizing an important class of queries": with
/// the frontend's objectId -> (chunkId, subChunkId) table, a point query
/// touches one chunk; without it, the same retrieval becomes a full-sky
/// dispatch with a per-chunk scan. (We defeat index detection by wrapping
/// the predicate in arithmetic, which is exactly what would happen with an
/// un-indexed column.)
#include <cstdio>

#include "bench_util.h"
#include "util/stats.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Ablation — secondary index vs full-sky dispatch (LV1)",
              "§5.5 Indexing; §4.3 'Qserv limits its use of indexing'",
              "indexed: 1 chunk, ~4 s. un-indexed: every chunk scanned, "
              "minutes");

  PaperSetupOptions opts;
  opts.basePatchObjects = 900;
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  simio::CostParams params = simio::CostParams::paper150();
  auto ids = sampleObjectIds(setup, 6, 4242);

  util::RunningStats indexed, unindexed;
  std::size_t indexedChunks = 0, fullChunks = 0;
  for (std::int64_t id : ids) {
    auto withIndex = runQuery(
        setup, "SELECT * FROM Object WHERE objectId = " + std::to_string(id));
    indexedChunks = withIndex.chunksDispatched;
    indexed.add(
        virtualQuerySeconds(setup, withIndex, soloParams(withIndex, params)));

    // `objectId + 0 = N` is semantically identical but not detectable as an
    // index opportunity — the un-indexed execution path.
    auto noIndex = runQuery(
        setup,
        "SELECT * FROM Object WHERE objectId + 0 = " + std::to_string(id));
    fullChunks = noIndex.chunksDispatched;
    unindexed.add(virtualQuerySeconds(setup, noIndex, params));

    if (withIndex.result->numRows() != noIndex.result->numRows()) {
      std::fprintf(stderr, "result mismatch!\n");
      return 1;
    }
  }

  std::printf("\n");
  printKeyValue("indexed point query",
                util::format("%zu chunk, %.2f s mean", indexedChunks,
                             indexed.mean()));
  printKeyValue("un-indexed point query",
                util::format("%zu chunks, %.0f s mean (%.0fx slower)",
                             fullChunks, unindexed.mean(),
                             unindexed.mean() / indexed.mean()));
  printKeyValue("paper",
                "LV1 at ~4 s is only possible because of the secondary "
                "index; an unindexed lookup is a full-sky scan");
  return 0;
}
