/// \file bench_scaling_hv.cc
/// \brief Figure 11 — high-volume query execution time vs node count
/// (40/100/150 nodes, constant data per node, §6.3.2).
/// Paper: HV1 grows linearly with node count (the frontend does fixed work
/// per chunk and the chunk count grows with the emulated cluster); HV3
/// shows a similar trend "due to cache effects — its result was cached so
/// execution became more dominated by overhead"; HV2 is approximately flat
/// (scan-bound weak scaling).
#include <cstdio>
#include <cstdlib>
#include <set>

#include "bench_util.h"

int main() {
  using namespace qserv;
  using namespace qserv::bench;

  printBanner("Figure 11 — HV1/HV2/HV3 vs node count (constant data/node)",
              "§6.3.2, Fig 11: HV1 linear, HV3 linear-ish (cached), "
              "HV2 ~flat at 150-250 s",
              "dispatch overhead grows with chunk count; scan time stays "
              "constant per node");

  PaperSetupOptions opts;
  opts.basePatchObjects = 900;
  PaperSetup setup = makePaperSetup(opts);
  printKeyValue("setup", util::format("%.1f s, %zu chunks, rowScale %.0f",
                                      setup.setupSeconds,
                                      setup.sortedChunks.size(),
                                      setup.rowScale));

  const std::string hv1 = "SELECT COUNT(*) FROM Object";
  const std::string hv2 =
      "SELECT objectId, ra_PS, decl_PS, uFlux_PS, gFlux_PS, rFlux_PS, "
      "iFlux_PS, zFlux_PS, yFlux_PS FROM Object "
      "WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 4";
  const std::string hv3 =
      "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId FROM Object "
      "GROUP BY chunkId";

  std::printf("\n  %-8s %8s %12s %14s %12s %12s\n", "nodes", "chunks",
              "HV1 s", "HV1 batched s", "HV2 s", "HV3 s");
  for (int nodes : {40, 100, 150}) {
    auto chunks = emulateClusterSize(setup, nodes);
    simio::CostParams params = simio::CostParams::paper150();
    params.nodeCount = nodes;

    auto e1 = runQuery(setup, hv1);
    double v1 = simio::simulateQuery(virtualTasks(setup, e1, params, 150),
                                     params)
                    .elapsedSec();
    // The same execution under batched dispatch: one request per placement
    // node replaces the 2.8 ms/chunk master term with its amortized share,
    // so HV1 stops growing linearly in the dispatch term (§7.6 remedy).
    auto batchedTasks = virtualTasks(setup, e1, params, 150);
    {
      std::set<int> workers;
      for (const auto& t : batchedTasks) workers.insert(t.worker);
      double d = simio::amortizedBatchDispatchSec(batchedTasks.size(),
                                                  workers.size(), params);
      for (auto& t : batchedTasks) t.dispatchSec = d;
    }
    double v1b = simio::simulateQuery(batchedTasks, params).elapsedSec();

    simio::CostParams warm = params;
    warm.cacheFraction = 0.65;  // Fig 6's partially-cached steady state
    auto e2 = runQuery(setup, hv2);
    double v2 = simio::simulateQuery(virtualTasks(setup, e2, warm, 150), warm)
                    .elapsedSec();

    simio::CostParams cached = params;
    cached.cacheFraction = 0.9;  // "its result was cached" (§6.3.2)
    auto e3 = runQuery(setup, hv3);
    double v3 = simio::simulateQuery(virtualTasks(setup, e3, cached, 150),
                                     cached)
                    .elapsedSec();

    std::printf("  %-8d %8zu %12.1f %14.1f %12.1f %12.1f\n", nodes,
                chunks.size(), v1, v1b, v2, v3);
  }
  restoreFullCluster(setup);
  std::printf("\n");
  printKeyValue("paper Fig 11",
                "HV1 ~8->25 s linear; HV3 ~60->110 s; HV2 ~170-250 s flat");
  printKeyValue("batched HV1",
                "the linear dispatch term collapses to the amortized "
                "per-batch cost (~0.25 ms/chunk)");

  // DR-scale extrapolation: the same HV1 on an LSST data-release-scale
  // partitioning (~11x the paper's chunk count). Per-chunk dispatch would
  // put the master term alone near 2.8 ms x ~100k = ~275 s; batched
  // dispatch keeps the whole query in the tens of seconds. Override the
  // geometry with QSERV_HV_DR_STRIPES (0 skips the section).
  int drStripes = 286;
  if (const char* env = std::getenv("QSERV_HV_DR_STRIPES")) {
    drStripes = std::atoi(env);
  }
  if (drStripes > 0) {
    PaperSetupOptions drOpts;
    drOpts.basePatchObjects = 900;
    drOpts.numStripes = drStripes;
    drOpts.numSubStripes = 3;
    drOpts.dispatchMode = core::DispatchMode::kBatched;
    PaperSetup dr = makePaperSetup(drOpts);
    printKeyValue("DR-scale setup",
                  util::format("%.1f s, %zu chunks (%d stripes)",
                               dr.setupSeconds, dr.sortedChunks.size(),
                               drStripes));
    simio::CostParams params = simio::CostParams::paper150();
    auto e = runQuery(dr, hv1);
    auto tasks = virtualTasks(dr, e, params, 150);
    double v = simio::simulateQuery(tasks, params).elapsedSec();
    double perChunkMasterSec =
        params.masterPerChunkOverheadSec *
        static_cast<double>(dr.sortedChunks.size());
    printKeyValue(
        "DR-scale HV1",
        util::format("batched %.1f virtual s (wall %.0f ms, %.3f ms/chunk "
                     "amortized); per-chunk master term alone would be "
                     "%.0f s",
                     v, e.wallSeconds * 1e3,
                     (tasks.empty() ? 0.0 : tasks.front().dispatchSec) * 1e3,
                     perChunkMasterSec));
  }
  return 0;
}
