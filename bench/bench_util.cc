#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "sphgeom/angle.h"
#include "util/metrics.h"

namespace qserv::bench {

void emitMetricsSnapshotAtExit() {
  static bool registered = false;
  if (registered) return;
  const char* path = std::getenv("QSERV_METRICS_JSON");
  if (path == nullptr || *path == '\0') return;
  registered = true;
  std::atexit([] {
    const char* p = std::getenv("QSERV_METRICS_JSON");
    if (p == nullptr) return;
    std::FILE* f = std::fopen(p, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics snapshot to %s\n", p);
      return;
    }
    std::string json = util::MetricsRegistry::instance().snapshot().toJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "metrics snapshot written to %s\n", p);
  });
}

void recordRate(const std::string& gauge, const util::Stopwatch& watch,
                std::int64_t iterations) {
  if (iterations <= 0) return;
  util::MetricsRegistry::instance().gauge(gauge).set(static_cast<std::int64_t>(
      watch.elapsedSeconds() * 1e9 / static_cast<double>(iterations)));
}

int PaperSetup::chunkPosition(std::int32_t chunkId) const {
  auto it = std::lower_bound(sortedChunks.begin(), sortedChunks.end(), chunkId);
  if (it == sortedChunks.end() || *it != chunkId) return 0;
  return static_cast<int>(it - sortedChunks.begin());
}

PaperSetup makePaperSetup(const PaperSetupOptions& options) {
  emitMetricsSnapshotAtExit();
  util::Stopwatch watch;
  PaperSetup setup;
  setup.catalog = core::CatalogConfig::lsst(options.numStripes,
                                            options.numSubStripes);
  // Use the dataset's measured MyISAM widths rather than Table 1's final-DR
  // estimates, matching the bandwidth arithmetic in §6.2.
  for (auto& t : setup.catalog.tables) {
    if (t.name == "Object") t.paperRowBytes = kObjectMydBytesPerRow;
    if (t.name == "Source") t.paperRowBytes = kSourceMydBytesPerRow;
  }

  core::SkyDataOptions data;
  data.basePatch = options.basePatch;
  data.basePatchObjects = options.basePatchObjects;
  data.withSources = options.withSources;
  data.region = options.objectRegion;
  data.sourceRegion = options.sourceRegion;
  auto catalog = core::buildSkyCatalog(setup.catalog, data);
  if (!catalog.isOk()) {
    std::fprintf(stderr, "bench setup: %s\n",
                 catalog.status().toString().c_str());
    std::abort();
  }

  // Paper rows per generated row: ratio of sky densities.
  double patchArea = datagen::pt11PatchBox().area();
  double ourDensity =
      static_cast<double>(options.basePatchObjects) / patchArea;
  double skyArea = 4.0 * sphgeom::kPi * sphgeom::kDegPerRad *
                   sphgeom::kDegPerRad;
  double paperDensity = datagen::kTestObjectRows / skyArea;
  setup.rowScale = paperDensity / ourDensity;

  core::ClusterOptions copts;
  copts.numWorkers = options.realWorkers;
  copts.worker = options.workerConfig;
  copts.worker.rowScale = setup.rowScale;
  copts.frontend.catalog = setup.catalog;
  copts.frontend.cost = simio::CostParams::paper150();
  copts.frontend.dispatchParallelism = options.dispatchParallelism;
  copts.frontend.dispatchMode = options.dispatchMode;
  auto cluster = core::MiniCluster::create(copts, *catalog);
  if (!cluster.isOk()) {
    std::fprintf(stderr, "bench cluster: %s\n",
                 cluster.status().toString().c_str());
    std::abort();
  }
  setup.cluster = std::move(*cluster);
  setup.sortedChunks = setup.cluster->chunkIds();
  setup.setupSeconds = watch.elapsedSeconds();
  return setup;
}

std::vector<simio::SimChunkTask> virtualTasks(
    const PaperSetup& setup, const core::QservFrontend::Execution& exec,
    const simio::CostParams& params, int placementNodes) {
  int mod = placementNodes > 0 ? placementNodes : std::max(1, params.nodeCount);
  std::vector<simio::SimChunkTask> tasks;
  tasks.reserve(exec.accounting.size());
  for (const auto& a : exec.accounting) {
    simio::SimChunkTask t;
    t.worker = setup.chunkPosition(a.chunkId) % mod;
    t.serviceSec = simio::workerServiceSeconds(a.observables, params);
    t.collectSec = simio::masterCollectSeconds(a.observables, params);
    t.interactive = exec.queryClass == core::QueryClass::kInteractive;
    tasks.push_back(t);
  }
  // A batched execution dispatches one request per (query, worker): on the
  // virtual cluster the batch count is the number of distinct placement
  // nodes, and every chunk pays the amortized share instead of the full
  // per-chunk master overhead.
  if (exec.dispatchMode == core::DispatchMode::kBatched && !tasks.empty()) {
    std::set<int> workers;
    for (const auto& t : tasks) workers.insert(t.worker);
    double dispatchSec =
        simio::amortizedBatchDispatchSec(tasks.size(), workers.size(), params);
    for (auto& t : tasks) t.dispatchSec = dispatchSec;
  }
  return tasks;
}

std::vector<std::int32_t> emulateClusterSize(PaperSetup& setup, int nodes) {
  std::vector<std::int32_t> chunks;
  for (std::size_t i = 0; i < setup.sortedChunks.size(); ++i) {
    if (static_cast<int>(i % 150) < nodes) {
      chunks.push_back(setup.sortedChunks[i]);
    }
  }
  setup.frontend().setAvailableChunks(chunks);
  return chunks;
}

void restoreFullCluster(PaperSetup& setup) {
  setup.frontend().setAvailableChunks(setup.sortedChunks);
}

double virtualQuerySeconds(const PaperSetup& setup,
                           const core::QservFrontend::Execution& exec,
                           const simio::CostParams& params) {
  return simio::simulateQuery(virtualTasks(setup, exec, params), params)
      .elapsedSec();
}

simio::CostParams soloParams(const core::QservFrontend::Execution& exec,
                             simio::CostParams base) {
  double perNode = static_cast<double>(exec.accounting.size()) /
                   std::max(1, base.nodeCount);
  int streams = static_cast<int>(std::min<double>(
      std::max(1, base.slotsPerNode), std::ceil(std::max(1.0, perNode))));
  base.scanStreams = streams;
  return base;
}

core::QservFrontend::Execution runQuery(PaperSetup& setup,
                                        const std::string& sql) {
  auto r = setup.frontend().query(sql);
  if (!r.isOk()) {
    std::fprintf(stderr, "bench query failed: %s\n  for: %s\n",
                 r.status().toString().c_str(), sql.c_str());
    std::abort();
  }
  return std::move(r).value();
}

std::vector<std::int64_t> sampleObjectIds(PaperSetup& setup, std::size_t n,
                                          std::uint64_t seed) {
  auto table = setup.frontend().metadata().findTable(
      core::SecondaryIndex::kTableName);
  std::vector<std::int64_t> out;
  if (!table || table->numRows() == 0) return out;
  util::Rng rng(seed);
  const auto& ids = table->intColumn(0);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ids[rng.below(ids.size())]);
  }
  return out;
}

void printBanner(const std::string& experiment, const std::string& paperRef,
                 const std::string& expectation) {
  std::printf("=============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  paper: %s\n", paperRef.c_str());
  std::printf("  expected shape: %s\n", expectation.c_str());
  std::printf("=============================================================\n");
}

void printRunHeader(const std::string& label) {
  std::printf("-- %s\n", label.c_str());
}

void printExecution(int index, double wallMs, double virtualSec) {
  std::printf("  exec %3d   wall %9.2f ms   virtual %9.2f s\n", index, wallMs,
              virtualSec);
}

void printKeyValue(const std::string& key, const std::string& value) {
  std::printf("  %-34s %s\n", key.c_str(), value.c_str());
}

}  // namespace qserv::bench
