/// \file bench_observability.cc
/// \brief Overhead gate for query-level profiling (EXPLAIN ANALYZE,
/// QueryStats, slow-query log — see DESIGN.md "Observability").
///
/// Profiling must be cheap enough to leave on in production: the paper's
/// operational stance is that every query is traced ("logging is pervasive",
/// §5.4-adjacent practice), so the profile derivation and QueryStats append
/// ride on every query. This bench runs the same full-scan query with
/// profiling disabled and enabled, interleaved to cancel drift, and ABORTS
/// (exit 1) if the median wall-time overhead exceeds 5%.
///
/// It also smoke-checks the tentpole surface end to end: EXPLAIN returns a
/// plan table without executing, EXPLAIN ANALYZE returns a per-stage
/// breakdown whose stage sum is sane, and QueryStats retains one row per
/// profiled query. Run as part of `perf-smoke` with QSERV_METRICS_JSON set;
/// the exit snapshot (BENCH_observability.json) records both medians and the
/// overhead so later PRs see the trajectory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sql/table.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace {

using namespace qserv;

constexpr int kPairs = 25;         // interleaved off/on measurement pairs
constexpr int kWarmup = 5;         // unmeasured runs per mode before timing
constexpr double kMaxOverhead = 0.05;

double medianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// One timed execution through the real frontend; aborts on failure.
double timedRun(bench::PaperSetup& setup, const std::string& sql) {
  util::Stopwatch watch;
  bench::runQuery(setup, sql);
  return watch.elapsedSeconds();
}

void requireRows(const core::QservFrontend::Execution& exec,
                 const char* what) {
  if (!exec.result || exec.result->numRows() == 0) {
    std::fprintf(stderr, "OBSERVABILITY FAILURE: %s returned no rows\n", what);
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace qserv;

  bench::PaperSetupOptions opts;
  opts.basePatchObjects = 300;
  opts.realWorkers = 2;
  opts.numStripes = 18;
  opts.numSubStripes = 6;
  opts.objectRegion = sphgeom::SphericalBox(0, -7, 14, 7);
  auto setup = bench::makePaperSetup(opts);
  auto& frontend = setup.frontend();

  bench::printBanner(
      "observability: profiling overhead + EXPLAIN surface",
      "DESIGN.md Observability (per-query profiles from trace spans)",
      "profiled wall within 5% of unprofiled; EXPLAIN never dispatches");

  const std::string scan =
      "SELECT COUNT(*) FROM Object WHERE iFlux_PS > 0";

  // --- tentpole smoke checks ------------------------------------------------
  {
    auto before = frontend.processList().size();
    auto plan = frontend.query("EXPLAIN " + scan);
    if (!plan.isOk()) {
      std::fprintf(stderr, "EXPLAIN failed: %s\n",
                   plan.status().toString().c_str());
      return 1;
    }
    requireRows(*plan, "EXPLAIN");
    if (plan->chunksDispatched != 0) {
      std::fprintf(stderr,
                   "OBSERVABILITY FAILURE: EXPLAIN dispatched %zu chunks\n",
                   plan->chunksDispatched);
      return 1;
    }
    // EXPLAIN must not show up as an executed query.
    if (frontend.processList().size() != before) {
      std::fprintf(stderr,
                   "OBSERVABILITY FAILURE: EXPLAIN entered the process list\n");
      return 1;
    }
  }
  {
    auto analyzed = frontend.query("EXPLAIN ANALYZE " + scan);
    if (!analyzed.isOk()) {
      std::fprintf(stderr, "EXPLAIN ANALYZE failed: %s\n",
                   analyzed.status().toString().c_str());
      return 1;
    }
    requireRows(*analyzed, "EXPLAIN ANALYZE");
    if (!analyzed->profile || analyzed->profile->wallSeconds <= 0.0) {
      std::fprintf(stderr,
                   "OBSERVABILITY FAILURE: EXPLAIN ANALYZE has no profile\n");
      return 1;
    }
    bench::printKeyValue(
        "explain-analyze stages",
        util::format("%zu stages, wall %.2f ms",
                     analyzed->profile->stages.size(),
                     analyzed->profile->wallSeconds * 1e3));
  }
  {
    auto stats = frontend.query("SELECT COUNT(*) FROM QueryStats");
    if (!stats.isOk() || !stats->result || stats->result->numRows() != 1) {
      std::fprintf(stderr, "OBSERVABILITY FAILURE: QueryStats not queryable\n");
      return 1;
    }
  }

  // --- overhead gate --------------------------------------------------------
  // Warm both paths (subchunk caches, lazy table indexes, allocator) before
  // measuring; then interleave off/on so background drift hits both equally.
  for (int i = 0; i < kWarmup; ++i) {
    frontend.setProfilingEnabled(false);
    timedRun(setup, scan);
    frontend.setProfilingEnabled(true);
    timedRun(setup, scan);
  }

  std::vector<double> offSec, onSec;
  auto& reg = util::MetricsRegistry::instance();
  auto& offHist = reg.histogram("bench.observability.baseline_seconds");
  auto& onHist = reg.histogram("bench.observability.profiled_seconds");
  for (int i = 0; i < kPairs; ++i) {
    frontend.setProfilingEnabled(false);
    double off = timedRun(setup, scan);
    frontend.setProfilingEnabled(true);
    double on = timedRun(setup, scan);
    offSec.push_back(off);
    onSec.push_back(on);
    offHist.observe(off);
    onHist.observe(on);
    std::printf("  pair %3d   off %8.2f ms   on %8.2f ms\n", i, off * 1e3,
                on * 1e3);
  }
  frontend.setProfilingEnabled(true);

  double offMed = medianOf(offSec);
  double onMed = medianOf(onSec);
  double overhead = offMed > 0.0 ? (onMed - offMed) / offMed : 0.0;
  reg.gauge("bench.observability.baseline_us")
      .set(static_cast<std::int64_t>(offMed * 1e6));
  reg.gauge("bench.observability.profiled_us")
      .set(static_cast<std::int64_t>(onMed * 1e6));
  // Basis points so the int64 gauge keeps two decimal digits of percent.
  reg.gauge("bench.observability.overhead_bp")
      .set(static_cast<std::int64_t>(overhead * 1e4));

  bench::printKeyValue("baseline median",
                       util::format("%.3f ms", offMed * 1e3));
  bench::printKeyValue("profiled median",
                       util::format("%.3f ms", onMed * 1e3));
  bench::printKeyValue("overhead", util::format("%.2f%%", overhead * 100.0));

  if (overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "OVERHEAD FAILURE: profiling costs %.2f%% (> %.0f%%): "
                 "baseline %.3f ms, profiled %.3f ms\n",
                 overhead * 100.0, kMaxOverhead * 100.0, offMed * 1e3,
                 onMed * 1e3);
    return 1;
  }
  std::printf("observability overhead gate passed\n");
  return 0;
}
