/// \file bench_filter.cc
/// \brief Scan-filter benchmarks: vectorized kernels vs the row-at-a-time
/// path, plus zone-map pruning (see sql/vector_eval.h and DESIGN.md "Scan
/// pipeline").
///
/// Run as part of the `perf-smoke` CTest target with QSERV_METRICS_JSON set;
/// the exit snapshot (BENCH_filter.json) records the measured speedups as
/// gauges so later PRs have a trajectory to compare against. The process
/// aborts if the two paths disagree on any result, or if the zone-prunable
/// predicate fails to report a pruned scan with zero rows scanned.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "sql/database.h"
#include "sql/expr_eval.h"
#include "sql/parser.h"
#include "sql/vector_eval.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace qserv;

constexpr std::size_t kRows = 400000;

/// Scan table: objectId INT (0..N), subChunkId INT (0..99), ra/decl DOUBLE
/// positions, flux DOUBLE with ~5% NULLs. Mirrors the chunk-table shape the
/// paper's scan queries hit.
sql::Database* scanDb() {
  static sql::Database* db = [] {
    auto* d = new sql::Database("bench_filter");
    sql::Schema schema({{"objectId", sql::ColumnType::kInt},
                        {"subChunkId", sql::ColumnType::kInt},
                        {"ra", sql::ColumnType::kDouble},
                        {"decl", sql::ColumnType::kDouble},
                        {"flux", sql::ColumnType::kDouble}});
    auto table = std::make_shared<sql::Table>("ScanT", schema);
    util::Rng rng(42);
    std::vector<std::vector<sql::Value>> batch;
    batch.reserve(4096);
    for (std::size_t i = 0; i < kRows; ++i) {
      std::vector<sql::Value> row;
      row.reserve(5);
      row.emplace_back(static_cast<std::int64_t>(i));
      row.emplace_back(static_cast<std::int64_t>(i % 100));
      row.emplace_back(rng.uniform(0.0, 360.0));
      row.emplace_back(rng.uniform(-90.0, 90.0));
      if (rng.below(100) < 5) {
        row.emplace_back();  // NULL flux
      } else {
        row.emplace_back(rng.uniform(10.0, 30.0));
      }
      batch.push_back(std::move(row));
      if (batch.size() == 4096) {
        auto s = table->appendRows(batch);
        if (!s.isOk()) std::abort();
        batch.clear();
      }
    }
    if (!batch.empty() && !table->appendRows(batch).isOk()) std::abort();
    if (!d->registerTable(std::move(table)).isOk()) std::abort();
    return d;
  }();
  return db;
}

std::int64_t runCount(sql::Database& db, const std::string& query,
                      sql::ExecStats* stats = nullptr) {
  auto r = db.execute(query, stats);
  if (!r.isOk()) {
    std::fprintf(stderr, "bench_filter query failed: %s\n  for: %s\n",
                 r.status().toString().c_str(), query.c_str());
    std::abort();
  }
  return (*r)->cell(0, 0).asInt();
}

// The three predicate classes of the perf-smoke matrix.
const char* kNonSelective =
    "SELECT COUNT(*) FROM ScanT WHERE ra BETWEEN 0 AND 324";  // ~90% pass
const char* kSelective =
    "SELECT COUNT(*) FROM ScanT WHERE ra BETWEEN 100 AND 103.6";  // ~1% pass
const char* kConjunction =
    "SELECT COUNT(*) FROM ScanT WHERE ra BETWEEN 30 AND 300 "
    "AND decl BETWEEN -45 AND 45 AND flux > 12.5";
const char* kZonePrunable =
    "SELECT COUNT(*) FROM ScanT WHERE subChunkId = 999";  // table holds 0..99

void benchQuery(benchmark::State& state, const char* query, bool vectorized) {
  sql::Database* db = scanDb();
  sql::setVectorizedFilterEnabled(vectorized);
  std::uint64_t rows = 0;
  for (auto _ : state) {
    sql::ExecStats stats;
    benchmark::DoNotOptimize(runCount(*db, query, &stats));
    rows += stats.rowsScanned + stats.zoneMapRowsSkipped;
  }
  sql::setVectorizedFilterEnabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(rows));
}

void BM_RowScanNonSelective(benchmark::State& s) {
  benchQuery(s, kNonSelective, false);
}
void BM_VectorScanNonSelective(benchmark::State& s) {
  benchQuery(s, kNonSelective, true);
}
void BM_RowScanSelective(benchmark::State& s) {
  benchQuery(s, kSelective, false);
}
void BM_VectorScanSelective(benchmark::State& s) {
  benchQuery(s, kSelective, true);
}
void BM_RowScanConjunction(benchmark::State& s) {
  benchQuery(s, kConjunction, false);
}
void BM_VectorScanConjunction(benchmark::State& s) {
  benchQuery(s, kConjunction, true);
}
void BM_RowScanZonePrunable(benchmark::State& s) {
  benchQuery(s, kZonePrunable, false);
}
void BM_VectorScanZonePrunable(benchmark::State& s) {
  benchQuery(s, kZonePrunable, true);
}
BENCHMARK(BM_RowScanNonSelective);
BENCHMARK(BM_VectorScanNonSelective);
BENCHMARK(BM_RowScanSelective);
BENCHMARK(BM_VectorScanSelective);
BENCHMARK(BM_RowScanConjunction);
BENCHMARK(BM_VectorScanConjunction);
BENCHMARK(BM_RowScanZonePrunable);
BENCHMARK(BM_VectorScanZonePrunable);

/// Kernel-level comparison, no SQL/executor overhead: ScanFilter::run vs a
/// CompiledExpr eval loop over the same predicate.
const sql::Expr* wherePredicate() {
  static sql::Statement* stmt = [] {
    auto r = sql::parseStatement(
        "SELECT * FROM ScanT WHERE ra BETWEEN 30 AND 300");
    if (!r.isOk()) std::abort();
    return new sql::Statement(std::move(*r));
  }();
  return std::get<sql::SelectStmt>(*stmt).where.get();
}

void BM_KernelDoubleRange400k(benchmark::State& state) {
  sql::Database* db = scanDb();
  sql::TablePtr table = db->findTable("ScanT");
  std::vector<sql::ScopeTable> scope{{"ScanT", table.get()}};
  const sql::Expr* pred = wherePredicate();
  std::vector<std::size_t> out;
  for (auto _ : state) {
    auto sf = sql::compileScanFilter({&pred, 1}, scope, 0, db->functions());
    if (!sf.isOk()) std::abort();
    out.clear();
    sf->run(*table, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_KernelDoubleRange400k);

void BM_ScalarExprDoubleRange400k(benchmark::State& state) {
  sql::Database* db = scanDb();
  sql::TablePtr table = db->findTable("ScanT");
  std::vector<sql::ScopeTable> scope{{"ScanT", table.get()}};
  auto compiled = sql::bindExpr(*wherePredicate(), scope, db->functions());
  if (!compiled.isOk()) std::abort();
  const sql::Table* raw = table.get();
  for (auto _ : state) {
    std::size_t cursor = 0;
    sql::EvalCtx ctx{{&raw, 1}, {&cursor, 1}, {}};
    std::size_t hits = 0;
    for (cursor = 0; cursor < kRows; ++cursor) {
      if ((*compiled)->eval(ctx).isTrue()) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_ScalarExprDoubleRange400k);

// ------------------------------------------------------- acceptance gates

void requireEqual(std::int64_t a, std::int64_t b, const char* what) {
  if (a != b) {
    std::fprintf(stderr, "PARITY FAILURE (%s): vector=%lld row=%lld\n", what,
                 static_cast<long long>(a), static_cast<long long>(b));
    std::abort();
  }
}

void verifyParityAndPruning() {
  sql::Database* db = scanDb();
  for (const char* q :
       {kNonSelective, kSelective, kConjunction, kZonePrunable}) {
    sql::setVectorizedFilterEnabled(true);
    std::int64_t vec = runCount(*db, q);
    sql::setVectorizedFilterEnabled(false);
    std::int64_t row = runCount(*db, q);
    sql::setVectorizedFilterEnabled(true);
    requireEqual(vec, row, q);
  }
  sql::ExecStats stats;
  std::int64_t n = runCount(*db, kZonePrunable, &stats);
  if (n != 0 || stats.zoneMapPrunes != 1 || stats.rowsScanned != 0 ||
      stats.zoneMapRowsSkipped != kRows) {
    std::fprintf(stderr,
                 "ZONE-MAP FAILURE: count=%lld prunes=%llu scanned=%llu "
                 "skipped=%llu (want 0/1/0/%zu)\n",
                 static_cast<long long>(n),
                 static_cast<unsigned long long>(stats.zoneMapPrunes),
                 static_cast<unsigned long long>(stats.rowsScanned),
                 static_cast<unsigned long long>(stats.zoneMapRowsSkipped),
                 kRows);
    std::abort();
  }
  std::printf("zone-map prune check: 0 rows scanned, %zu skipped  [ok]\n",
              kRows);
}

double secondsPerExec(sql::Database& db, const char* query, bool vectorized,
                      int iters) {
  sql::setVectorizedFilterEnabled(vectorized);
  (void)runCount(db, query);  // warm up
  double best = 1e30;
  for (int i = 0; i < iters; ++i) {
    util::Stopwatch w;
    (void)runCount(db, query);
    best = std::min(best, w.elapsedSeconds());
  }
  sql::setVectorizedFilterEnabled(true);
  return best;
}

void reportSpeedups() {
  sql::Database* db = scanDb();
  auto& reg = util::MetricsRegistry::instance();
  struct Case {
    const char* label;
    const char* metric;
    const char* query;
  };
  const Case cases[] = {
      {"non-selective double range", "bench.filter.speedup_nonselective",
       kNonSelective},
      {"selective double range", "bench.filter.speedup_selective", kSelective},
      {"conjunction", "bench.filter.speedup_conjunction", kConjunction},
      {"zone-prunable", "bench.filter.speedup_zoneprune", kZonePrunable},
  };
  std::printf("---- vectorized vs row-at-a-time (end-to-end execute) ----\n");
  for (const Case& c : cases) {
    double rowSec = secondsPerExec(*db, c.query, false, 7);
    double vecSec = secondsPerExec(*db, c.query, true, 7);
    double speedup = rowSec / vecSec;
    reg.gauge(c.metric).set(speedup);
    std::printf("  %-28s row %8.3f ms   vector %8.3f ms   speedup %5.2fx\n",
                c.label, rowSec * 1e3, vecSec * 1e3, speedup);
    if (std::string(c.metric) == "bench.filter.speedup_nonselective" &&
        speedup < 3.0) {
      std::fprintf(stderr,
                   "SPEEDUP FAILURE: non-selective scan speedup %.2fx < 3x\n",
                   speedup);
      std::abort();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::emitMetricsSnapshotAtExit();
  verifyParityAndPruning();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  reportSpeedups();
  benchmark::Shutdown();
  return 0;
}
